package dataset

import (
	"fmt"
	"sync"

	"kdap/internal/fulltext"
	"kdap/internal/relation"
	"kdap/internal/schemagraph"
	"kdap/internal/stats"
)

// AWResellerFactCount is the number of FactResellerSales rows.
const AWResellerFactCount = 60855

var (
	awResellerOnce sync.Once
	awResellerWH   *Warehouse
)

// AWReseller returns the synthetic AW_RESELLER warehouse (7 dimensions,
// 13 tables, 4 hierarchical dimensions, >60k facts — the §6.1 shape). The
// warehouse is built once and shared; it is read-only after construction.
func AWReseller() *Warehouse {
	awResellerOnce.Do(func() { awResellerWH = buildAWReseller() })
	return awResellerWH
}

// salesBand snaps a raw annual sales figure to the banded levels the
// original AdventureWorks reseller dimension uses.
func salesBand(raw float64) float64 {
	bands := []float64{30000, 80000, 150000, 300000, 600000, 800000, 1000000, 1500000, 3000000}
	best := bands[0]
	for _, b := range bands[1:] {
		if diff, bestDiff := abs(raw-b), abs(raw-best); diff < bestDiff {
			best = b
		}
	}
	return best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func buildAWReseller() *Warehouse {
	db := relation.NewDatabase("AW_RESELLER")
	sh := buildAWDimCommon(db, true)
	rng := stats.NewRNG(20072)

	reseller := db.MustCreateTable(relation.MustSchema("DimReseller", []relation.Column{
		iCol("ResellerKey"), ftCol("ResellerName"), ftCol("BusinessType"),
		fCol("AnnualSales"), fCol("AnnualRevenue"), iCol("NumberOfEmployees"),
		iCol("GeographyKey"),
	}, "ResellerKey", []relation.ForeignKey{
		fk("GeographyKey", "DimGeography", "GeographyKey"),
	}))

	const nResellers = 400
	resellerGeo := make([]int, nResellers+1)
	for rk := 1; rk <= nResellers; rk++ {
		name := fmt.Sprintf("%s %s", awResellerWords1[rng.Intn(len(awResellerWords1))],
			awResellerWords2[rng.Intn(len(awResellerWords2))])
		bt := awBusinessTypes[rng.Intn(len(awBusinessTypes))]
		gi := rng.Intn(int(sh.geoCount))
		resellerGeo[rk] = gi
		// Business size: warehouses are big, specialty shops small; sales
		// scale with employees (plus noise), and country shifts the mix,
		// which is what makes the Figure 6 / Figure 7(c) correlations
		// informative.
		employees := 2 + rng.Intn(28)
		switch bt {
		case "Warehouse":
			employees = 40 + rng.Intn(260)
		case "Value Added Reseller":
			employees = 10 + rng.Intn(80)
		}
		if sh.geoCountry[gi] == "Canada" {
			employees = employees/2 + 1 // smaller Canadian outfits
		}
		// Head counts report in rounded steps past ten, like the original
		// dataset's banded reseller demographics.
		if employees > 100 {
			employees = employees / 10 * 10
		} else if employees > 10 {
			employees = employees / 5 * 5
		}
		// The original dataset bands AnnualSales into a handful of levels
		// (300K … 3M) with AnnualRevenue a tenth of sales.
		raw := float64(employees) * (8000 + 7000*rng.Float64())
		annualSales := salesBand(raw)
		annualRevenue := annualSales / 10
		reseller.MustAppend(relation.Int(int64(rk)), relation.String(name), relation.String(bt),
			relation.Float(annualSales), relation.Float(annualRevenue),
			relation.Int(int64(employees)), relation.Int(int64(gi+1)))
	}

	department := db.MustCreateTable(relation.MustSchema("DimDepartment", []relation.Column{
		iCol("DepartmentKey"), ftCol("DepartmentName"),
	}, "DepartmentKey", nil))
	for i, d := range awDepartments {
		department.MustAppend(relation.Int(int64(i+1)), relation.String(d))
	}

	employee := db.MustCreateTable(relation.MustSchema("DimEmployee", []relation.Column{
		iCol("EmployeeKey"), ftCol("FirstName"), ftCol("LastName"), ftCol("Title"),
		iCol("DepartmentKey"), iCol("TerritoryKey"),
	}, "EmployeeKey", []relation.ForeignKey{
		fk("DepartmentKey", "DimDepartment", "DepartmentKey"),
		fk("TerritoryKey", "DimSalesTerritory", "TerritoryKey"),
	}))
	const nEmployees = 96
	for ek := 1; ek <= nEmployees; ek++ {
		fn := awFirstNames[rng.Intn(len(awFirstNames))]
		ln := awLastNames[rng.Intn(len(awLastNames))]
		ti := rng.Intn(len(awTitles))
		// Sales staff dominate, and the title determines the department.
		if rng.Float64() < 0.7 {
			ti = rng.Intn(2) // Sales Representative / Sales Manager
		}
		dept := int64(1)
		switch awTitles[ti] {
		case "Marketing Specialist":
			dept = 2
		case "Production Technician":
			dept = 3
		case "Design Engineer":
			dept = 4
		case "Shipping Clerk":
			dept = 5
		}
		employee.MustAppend(relation.Int(int64(ek)), relation.String(fn), relation.String(ln),
			relation.String(awTitles[ti]), relation.Int(dept),
			relation.Int(int64(rng.Intn(len(awTerritory))+1)))
	}

	fact := db.MustCreateTable(relation.MustSchema("FactResellerSales", []relation.Column{
		iCol("SalesKey"), iCol("ProductKey"), iCol("ResellerKey"), iCol("EmployeeKey"),
		iCol("OrderDateKey"), iCol("PromotionKey"), iCol("CurrencyKey"),
		iCol("SalesTerritoryKey"), iCol("OrderQuantity"), fCol("UnitPrice"),
	}, "SalesKey", []relation.ForeignKey{
		fk("ProductKey", "DimProduct", "ProductKey"),
		fk("ResellerKey", "DimReseller", "ResellerKey"),
		fk("EmployeeKey", "DimEmployee", "EmployeeKey"),
		fk("OrderDateKey", "DimDate", "DateKey"),
		fk("PromotionKey", "DimPromotion", "PromotionKey"),
		fk("CurrencyKey", "DimCurrency", "CurrencyKey"),
		fk("SalesTerritoryKey", "DimSalesTerritory", "TerritoryKey"),
	}))

	// Resolve each geography row's territory once for the fact loop.
	geoTerr := make([]int64, sh.geoCount)
	for i, g := range awGeo {
		for ti, t := range awTerritory {
			if t[0] == g[4] {
				geoTerr[i] = int64(ti + 1)
			}
		}
	}

	for sk := int64(1); sk <= AWResellerFactCount; sk++ {
		rk := 1 + rng.Intn(nResellers)
		gi := resellerGeo[rk]
		country := sh.geoCountry[gi]
		pi := pickProduct(rng, country)
		p := awProducts[pi]
		dk := int64(1 + rng.Intn(int(sh.dateCount)))
		month := int((dk - 1) / 28 % 12)
		qty := int64(2 + rng.Intn(24)) // resellers order in bulk
		if p.dealerPrice > 400 {
			qty = int64(1 + rng.Intn(6))
		}
		price := p.dealerPrice * (1.05 + 0.2*rng.Float64())
		fact.MustAppend(relation.Int(sk), relation.Int(int64(pi+1)), relation.Int(int64(rk)),
			relation.Int(int64(1+rng.Intn(nEmployees))), relation.Int(dk),
			relation.Int(promotionFor(rng, p, month)), relation.Int(currencyForCountry(country)),
			relation.Int(geoTerr[gi]), relation.Int(qty), relation.Float(price))
	}

	g := schemagraph.New(db, "FactResellerSales")
	mustAddDim := func(d *schemagraph.Dimension) {
		if err := g.AddDimension(d); err != nil {
			panic(err)
		}
	}
	mustAddDim(&schemagraph.Dimension{
		Name:   "Product",
		Tables: []string{"DimProduct", "DimProductSubcategory", "DimProductCategory", "DimProductModel"},
		Hierarchies: []schemagraph.Hierarchy{
			{
				Name: "Category",
				Levels: []schemagraph.AttrRef{
					{Table: "DimProductCategory", Attr: "CategoryName"},
					{Table: "DimProductSubcategory", Attr: "SubcategoryName"},
					{Table: "DimProduct", Attr: "EnglishProductName"},
				},
			},
			{
				Name: "ProductLine",
				Levels: []schemagraph.AttrRef{
					{Table: "DimProductModel", Attr: "ProductLine"},
					{Table: "DimProductModel", Attr: "ModelName"},
					{Table: "DimProduct", Attr: "EnglishProductName"},
				},
			},
		},
		GroupBy: []schemagraph.AttrRef{
			{Table: "DimProductSubcategory", Attr: "SubcategoryName"},
			{Table: "DimProductCategory", Attr: "CategoryName"},
			{Table: "DimProductModel", Attr: "ProductLine"},
			{Table: "DimProduct", Attr: "Color"},
			{Table: "DimProduct", Attr: "DealerPrice"},
		},
	})
	mustAddDim(&schemagraph.Dimension{
		Name:   "Reseller",
		Tables: []string{"DimReseller", "DimGeography", "DimSalesTerritory"},
		Hierarchies: []schemagraph.Hierarchy{{
			Name: "Geography",
			Levels: []schemagraph.AttrRef{
				{Table: "DimGeography", Attr: "CountryRegionName"},
				{Table: "DimGeography", Attr: "StateProvinceName"},
				{Table: "DimGeography", Attr: "City"},
			},
		}},
		GroupBy: []schemagraph.AttrRef{
			{Table: "DimGeography", Attr: "City"},
			{Table: "DimGeography", Attr: "StateProvinceName"},
			{Table: "DimReseller", Attr: "BusinessType"},
			{Table: "DimReseller", Attr: "AnnualSales"},
			{Table: "DimReseller", Attr: "AnnualRevenue"},
			{Table: "DimReseller", Attr: "NumberOfEmployees"},
		},
	})
	mustAddDim(&schemagraph.Dimension{
		Name:   "Employee",
		Tables: []string{"DimEmployee", "DimDepartment"},
		Hierarchies: []schemagraph.Hierarchy{{
			Name: "Organization",
			Levels: []schemagraph.AttrRef{
				{Table: "DimDepartment", Attr: "DepartmentName"},
				{Table: "DimEmployee", Attr: "Title"},
				{Table: "DimEmployee", Attr: "LastName"},
			},
		}},
		GroupBy: []schemagraph.AttrRef{
			{Table: "DimEmployee", Attr: "Title"},
			{Table: "DimDepartment", Attr: "DepartmentName"},
		},
	})
	mustAddDim(&schemagraph.Dimension{
		Name:   "Date",
		Tables: []string{"DimDate"},
		Hierarchies: []schemagraph.Hierarchy{{
			Name: "Calendar",
			Levels: []schemagraph.AttrRef{
				{Table: "DimDate", Attr: "CalendarYear"},
				{Table: "DimDate", Attr: "CalendarQuarter"},
				{Table: "DimDate", Attr: "MonthName"},
				{Table: "DimDate", Attr: "FullDateLabel"},
			},
		}},
		GroupBy: []schemagraph.AttrRef{
			{Table: "DimDate", Attr: "CalendarYear"},
			{Table: "DimDate", Attr: "MonthName"},
		},
	})
	mustAddDim(&schemagraph.Dimension{
		Name:   "Promotion",
		Tables: []string{"DimPromotion"},
		GroupBy: []schemagraph.AttrRef{
			{Table: "DimPromotion", Attr: "EnglishPromotionName"},
			{Table: "DimPromotion", Attr: "EnglishPromotionType"},
		},
	})
	mustAddDim(&schemagraph.Dimension{
		Name:   "Currency",
		Tables: []string{"DimCurrency"},
		GroupBy: []schemagraph.AttrRef{
			{Table: "DimCurrency", Attr: "CurrencyName"},
		},
	})
	mustAddDim(&schemagraph.Dimension{
		Name:   "SalesTerritory",
		Tables: []string{"DimSalesTerritory"},
		GroupBy: []schemagraph.AttrRef{
			{Table: "DimSalesTerritory", Attr: "Region"},
			{Table: "DimSalesTerritory", Attr: "TerritoryGroup"},
		},
	})
	if err := g.Build(); err != nil {
		panic(err)
	}
	// The fact's own SalesTerritoryKey edge is the SalesTerritory
	// dimension; territory reached through the reseller's geography stays
	// in the Reseller dimension.
	g.LabelEdge("FactResellerSales", "SalesTerritoryKey", "SalesTerritory", "SalesTerritory")
	// The employee's territory assignment is part of the Employee
	// interpretation.
	g.LabelEdge("DimEmployee", "TerritoryKey", "EmployeeTerritory", "Employee")

	db.Freeze()
	ix := fulltext.NewIndex()
	ix.IndexDatabase(db)
	ix.Freeze()
	return &Warehouse{DB: db, Graph: g, Index: ix}
}
