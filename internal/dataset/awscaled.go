package dataset

import (
	"fmt"

	"kdap/internal/fulltext"
	"kdap/internal/relation"
	"kdap/internal/stats"
)

// Scaled AW_ONLINE builds. The paper's warehouse stops at ~60k facts;
// the segment-storage experiments need the same star schema at 1M-10M
// facts, resident (AWOnlineScaled) or streamed straight into disk
// segments so the fact table never materializes in memory
// (persist.AWOnlineScaledBacked). Both builds of the same scale
// generate byte-identical fact rows, which is what makes the resident
// build usable as the oracle for the disk-backed one. Fact storage is
// the caller's choice — persist imports dataset for warehouse
// snapshots, so the disk-backed wiring lives there — and ScaledBuild is
// the seam: dimensions first, then facts streamed wherever, then
// Finish.

// awScaledSeed keeps scaled builds deterministic and distinct from the
// paper-sized seed build.
const awScaledSeed = 20070

// awScaledCustomers sizes DimCustomer for n facts: roughly one
// customer per 200 sales, never below the paper's 2500 and capped at
// 50k so the dimension stays resident-friendly at 10M facts.
func awScaledCustomers(n int) int {
	c := n / 200
	if c < 2500 {
		c = 2500
	}
	if c > 50000 {
		c = 50000
	}
	return c
}

// ScaledBuild is a partially built scaled AW_ONLINE warehouse: every
// dimension table is resident and populated, and the fact table is
// whatever the caller makes of FactSchema — a resident relation.Table
// or a disk-backed one opened over streamed segment files.
type ScaledBuild struct {
	db         *relation.Database
	sh         *awShared
	rng        *stats.RNG
	custGeo    []int
	nCustomers int
	n          int
}

// NewAWOnlineScaledBuild builds the AW_ONLINE dimensions sized for n
// fact rows and returns the build ready to generate facts.
func NewAWOnlineScaledBuild(n int) *ScaledBuild {
	db := relation.NewDatabase("AW_ONLINE")
	sh := buildAWDimCommon(db, false)
	rng := stats.NewRNG(awScaledSeed)
	nCustomers := awScaledCustomers(n)
	custGeo := buildAWOnlineCustomers(db, rng, sh, nCustomers)
	return &ScaledBuild{db: db, sh: sh, rng: rng, custGeo: custGeo, nCustomers: nCustomers, n: n}
}

// FactSchema returns the FactInternetSales schema the fact storage must
// use.
func (b *ScaledBuild) FactSchema() *relation.Schema { return awOnlineFactSchema() }

// FactCount returns the number of fact rows GenerateFacts will emit.
func (b *ScaledBuild) FactCount() int { return b.n }

// GenerateFacts streams the build's n fact rows, in SalesKey order with
// ingest-clustered order dates, into emit. Call exactly once, between
// NewAWOnlineScaledBuild and Finish — the generator consumes the
// build's random stream.
func (b *ScaledBuild) GenerateFacts(emit func(vals []relation.Value) error) error {
	return genAWOnlineFacts(b.rng, b.sh, b.custGeo, b.nCustomers, b.n, true, emit)
}

// Finish registers the fact table, builds the schema graph, freezes the
// database, and indexes the full-text columns. fact must hold exactly
// the rows GenerateFacts emitted, under FactSchema.
func (b *ScaledBuild) Finish(fact *relation.Table) (*Warehouse, error) {
	if fact.Len() != b.n {
		return nil, fmt.Errorf("dataset: scaled fact table holds %d rows, want %d", fact.Len(), b.n)
	}
	return b.finish(fact)
}

// FinishPartial is Finish for streaming-ingest scenarios: the fact table
// may hold any prefix of the generated rows, the rest arriving later
// through the incremental append path (kdapcore.AppendFacts). Dimensions
// are sized for the full n-row build, so appended rows always join.
func (b *ScaledBuild) FinishPartial(fact *relation.Table) (*Warehouse, error) {
	if fact.Len() > b.n {
		return nil, fmt.Errorf("dataset: scaled fact table holds %d rows, build generates only %d", fact.Len(), b.n)
	}
	return b.finish(fact)
}

func (b *ScaledBuild) finish(fact *relation.Table) (*Warehouse, error) {
	if err := b.db.AddTable(fact); err != nil {
		return nil, err
	}
	g := awOnlineGraph(b.db)
	b.db.Freeze()
	ix := fulltext.NewIndex()
	ix.IndexDatabase(b.db)
	ix.Freeze()
	return &Warehouse{DB: b.db, Graph: g, Index: ix}, nil
}

// AWOnlineScaled builds the AW_ONLINE warehouse with n fact rows fully
// resident. Unlike AWOnline, builds are not cached: callers at the 10M
// scale should hold at most one.
func AWOnlineScaled(n int) *Warehouse {
	b := NewAWOnlineScaledBuild(n)
	fact := relation.NewTable(b.FactSchema())
	_ = b.GenerateFacts(func(vals []relation.Value) error {
		fact.MustAppend(vals...)
		return nil
	})
	wh, err := b.Finish(fact)
	if err != nil {
		panic(err)
	}
	return wh
}

// AWOnlineScaledPartial builds the AW_ONLINE warehouse holding only the
// first resident of n generated fact rows, returning the remaining
// n-resident rows in generation order for streaming append. Because the
// generator is seeded, the post-append warehouse holds exactly the rows
// AWOnlineScaled(n) would — the seam the ingest benchmark's fingerprint
// parity check is built on.
func AWOnlineScaledPartial(n, resident int) (*Warehouse, [][]relation.Value) {
	if resident < 0 || resident > n {
		panic(fmt.Sprintf("dataset: resident %d out of range 0..%d", resident, n))
	}
	b := NewAWOnlineScaledBuild(n)
	fact := relation.NewTable(b.FactSchema())
	tail := make([][]relation.Value, 0, n-resident)
	i := 0
	_ = b.GenerateFacts(func(vals []relation.Value) error {
		if i < resident {
			fact.MustAppend(vals...)
		} else {
			tail = append(tail, vals)
		}
		i++
		return nil
	})
	wh, err := b.FinishPartial(fact)
	if err != nil {
		panic(err)
	}
	return wh, tail
}
