package dataset

// Shared vocabulary for the synthetic AdventureWorks warehouses. The
// values reproduce the real AdventureWorks DW sample's vocabulary closely
// enough that every keyword of the paper's Table 3 query workload matches
// the same kind of attribute instance it matched in the original: product
// names with "Mountain" ambiguity across bikes/accessories/components,
// "California" as both a state and a street address, "Sydney" as both a
// city and a customer first name, promotion names containing product
// words, and so on.

// awGeo rows: City, StateProvince, CountryRegionName, CountryCode,
// TerritoryRegion.
var awGeo = [][5]string{
	{"San Francisco", "California", "United States", "US", "Southwest"},
	{"Palo Alto", "California", "United States", "US", "Southwest"},
	{"Santa Cruz", "California", "United States", "US", "Southwest"},
	{"San Jose", "California", "United States", "US", "Southwest"},
	{"Los Angeles", "California", "United States", "US", "Southwest"},
	{"Torrance", "California", "United States", "US", "Southwest"},
	{"Central Valley", "California", "United States", "US", "Southwest"},
	{"Berkeley", "California", "United States", "US", "Southwest"},
	{"Seattle", "Washington", "United States", "US", "Northwest"},
	{"Spokane", "Washington", "United States", "US", "Northwest"},
	{"Portland", "Oregon", "United States", "US", "Northwest"},
	{"Denver", "Colorado", "United States", "US", "Central"},
	{"Wichita", "Kansas", "United States", "US", "Central"},
	{"Ithaca", "New York", "United States", "US", "Northeast"},
	{"New York", "New York", "United States", "US", "Northeast"},
	{"Columbus", "Ohio", "United States", "US", "Central"},
	{"Sydney", "New South Wales", "Australia", "AU", "Australia"},
	{"Alexandria", "New South Wales", "Australia", "AU", "Australia"},
	{"Wollongong", "New South Wales", "Australia", "AU", "Australia"},
	{"Melbourne", "Victoria", "Australia", "AU", "Australia"},
	{"Berlin", "Brandenburg", "Germany", "DE", "Germany"},
	{"Frankfurt", "Hessen", "Germany", "DE", "Germany"},
	{"Hamburg", "Hamburg", "Germany", "DE", "Germany"},
	{"Paris", "Seine", "France", "FR", "France"},
	{"Orleans", "Loiret", "France", "FR", "France"},
	{"Lyon", "Rhone", "France", "FR", "France"},
	{"Vancouver", "British Columbia", "Canada", "CA", "Canada"},
	{"Victoria", "British Columbia", "Canada", "CA", "Canada"},
	{"Toronto", "Ontario", "Canada", "CA", "Canada"},
	{"London", "England", "United Kingdom", "GB", "United Kingdom"},
	{"Oxford", "England", "United Kingdom", "GB", "United Kingdom"},
}

// awTerritory rows: Region, Country, Group.
var awTerritory = [][3]string{
	{"Northwest", "United States", "North America"},
	{"Northeast", "United States", "North America"},
	{"Central", "United States", "North America"},
	{"Southwest", "United States", "North America"},
	{"Canada", "Canada", "North America"},
	{"France", "France", "Europe"},
	{"Germany", "Germany", "Europe"},
	{"United Kingdom", "United Kingdom", "Europe"},
	{"Australia", "Australia", "Pacific"},
}

// awCategories and awSubcats reproduce the four AdventureWorks categories
// and a representative set of subcategories.
var awCategories = []string{"Bikes", "Components", "Clothing", "Accessories"}

// awSubcats rows: subcategory name, category.
var awSubcats = [][2]string{
	{"Mountain Bikes", "Bikes"},
	{"Road Bikes", "Bikes"},
	{"Touring Bikes", "Bikes"},
	{"Handlebars", "Components"},
	{"Bottom Brackets", "Components"},
	{"Brakes", "Components"},
	{"Chains", "Components"},
	{"Cranksets", "Components"},
	{"Derailleurs", "Components"},
	{"Forks", "Components"},
	{"Headsets", "Components"},
	{"Mountain Frames", "Components"},
	{"Road Frames", "Components"},
	{"Touring Frames", "Components"},
	{"Pedals", "Components"},
	{"Saddles", "Components"},
	{"Wheels", "Components"},
	{"Hardware", "Components"},
	{"Bib-Shorts", "Clothing"},
	{"Caps", "Clothing"},
	{"Gloves", "Clothing"},
	{"Jerseys", "Clothing"},
	{"Shorts", "Clothing"},
	{"Socks", "Clothing"},
	{"Tights", "Clothing"},
	{"Vests", "Clothing"},
	{"Bike Racks", "Accessories"},
	{"Bike Stands", "Accessories"},
	{"Bottles and Cages", "Accessories"},
	{"Cleaners", "Accessories"},
	{"Fenders", "Accessories"},
	{"Helmets", "Accessories"},
	{"Hydration Packs", "Accessories"},
	{"Lights", "Accessories"},
	{"Locks", "Accessories"},
	{"Mirrors", "Accessories"},
	{"Panniers", "Accessories"},
	{"Pumps", "Accessories"},
	{"Tires and Tubes", "Accessories"},
}

// awProduct describes one catalog product.
type awProduct struct {
	name        string
	subcat      string
	model       string
	color       string
	dealerPrice float64
	description string
}

// awBikeVariants expands each bike model into the size/color variants the
// real AdventureWorks catalog carries; variantSizes lists frame sizes.
type awBikeVariant struct {
	model       string
	subcat      string
	colors      []string
	sizes       []string
	dealerPrice float64 // variants vary ±3% around this in generation order
	description string
}

var awBikeVariants = []awBikeVariant{
	{"Mountain-100", "Mountain Bikes", []string{"Silver", "Black"}, []string{"38", "42", "44", "48"}, 2020, "Competition mountain bike with aluminum frame"},
	{"Mountain-200", "Mountain Bikes", []string{"Silver", "Black"}, []string{"38", "42", "46"}, 1364, "Serious back-country riding with stout design"},
	{"Mountain-400-W", "Mountain Bikes", []string{"Silver"}, []string{"38", "40", "42", "46"}, 769, "Womens mountain bike for true trail riding"},
	{"Mountain-500", "Mountain Bikes", []string{"Red", "Black", "Silver"}, []string{"40", "42", "44", "48"}, 397, "Suitable for all off-road trips with bump absorbing design"},
	{"Road-150", "Road Bikes", []string{"Red"}, []string{"44", "48", "52", "56", "62"}, 2171, "Top of the line competition road bike ridden by race winners"},
	{"Road-250", "Road Bikes", []string{"Red", "Black"}, []string{"44", "48", "52", "58"}, 1466, "Alloy frame road bike for the budget conscious racer"},
	{"Road-650", "Road Bikes", []string{"Red", "Black"}, []string{"44", "52", "58", "60"}, 462, "Value priced road bike with performance pedigree"},
	{"Touring-1000", "Touring Bikes", []string{"Blue", "Yellow"}, []string{"46", "50", "54", "60"}, 1430, "Travel in comfort on long distance touring rides"},
	{"Touring-3000", "Touring Bikes", []string{"Blue", "Yellow"}, []string{"54", "58", "62"}, 445, "Affordable touring bike with handcrafted frame and rubber bumps"},
}

var awProducts = buildAWProducts()

// buildAWProducts assembles the catalog: expanded bike variants first
// (deterministic order), then the non-bike items.
func buildAWProducts() []awProduct {
	var out []awProduct
	for _, v := range awBikeVariants {
		i := 0
		for _, color := range v.colors {
			for _, size := range v.sizes {
				// Vary price slightly per variant, bounded within the
				// model's band; the Mountain price range must keep the
				// paper's 323–2040 DealerPrice endpoints.
				price := v.dealerPrice * (1 + 0.01*float64(i%3-1))
				if v.model == "Mountain-100" && color == "Silver" && size == "38" {
					price = 2040
				}
				if v.model == "Mountain-500" && color == "Silver" && size == "44" {
					price = 323
				}
				out = append(out, awProduct{
					name:        v.model + " " + color + ", " + size,
					subcat:      v.subcat,
					model:       v.model,
					color:       color,
					dealerPrice: float64(int(price)),
					description: v.description,
				})
				i++
			}
		}
	}
	return append(out, awNonBikeProducts...)
}

var awNonBikeProducts = []awProduct{
	// Components.
	{"LL Mountain Handlebars", "Handlebars", "LL Mountain Handlebars", "NA", 27, "Allpurpose bar for on or off-road"},
	{"HL Mountain Handlebars", "Handlebars", "HL Mountain Handlebars", "NA", 72, "Flat bar with padded grips for serious riders"},
	{"HL Road Frame - Black, 58", "Road Frames", "HL Road Frame", "Black", 852, "Our lightest and best quality aluminum frame"},
	{"LL Road Frame - Red, 60", "Road Frames", "LL Road Frame", "Red", 183, "Aluminum frame in a variety of colors"},
	{"HL Mountain Frame - Silver, 42", "Mountain Frames", "HL Mountain Frame", "Silver", 872, "Each frame is handcrafted to provide a built-in-front suspension"},
	{"ML Fork", "Forks", "ML Fork", "NA", 92, "Sealed cartridge keeps dirt out; Horquilla GM sliders"},
	{"HL Fork", "Forks", "HL Fork", "NA", 148, "High-performance carbon road fork with curved legs"},
	{"HL Headset", "Headsets", "HL Headset", "NA", 57, "Sealed cartridge bearings for smooth steering"},
	{"Chain", "Chains", "Chain", "Silver", 12, "Superior shifting performance chain"},
	{"Front Brakes", "Brakes", "Front Brakes", "Silver", 47, "All-weather brake pads with breakaway cable"},
	{"Rear Brakes", "Brakes", "Rear Brakes", "Silver", 47, "All-weather brake pads with breakaway cable"},
	{"Rear Derailleur", "Derailleurs", "Rear Derailleur", "Silver", 53, "Wide-link design for strength"},
	{"HL Crankset", "Cranksets", "HL Crankset", "Black", 179, "Triple crankset with alloy carrier"},
	{"HL Bottom Bracket", "Bottom Brackets", "HL Bottom Bracket", "NA", 54, "Stainless steel spindle and sealed bearings"},
	{"HL Mountain Pedal", "Pedals", "HL Mountain Pedal", "Silver", 35, "Stainless steel spindle provides durability"},
	{"Touring Pedal", "Pedals", "Touring Pedal", "Silver", 36, "A pedal for all touring conditions"},
	{"HL Mountain Saddle", "Saddles", "HL Mountain Saddle", "NA", 29, "Anatomic design for a full-day of riding"},
	{"LL Road Saddle", "Saddles", "LL Road Saddle", "NA", 12, "Lightweight cut-away design saddle"},
	{"LL Mountain Front Wheel", "Wheels", "LL Mountain Front Wheel", "Black", 27, "Replacement mountain wheel for entry-level rider"},
	{"ML Road Rear Wheel", "Wheels", "ML Road Rear Wheel", "Black", 72, "Replacement road rear wheel with sealed hub"},
	{"Blade", "Hardware", "Blade", "Silver", 1, "Replacement blade for chain tool"},
	{"Chainring", "Hardware", "Chainring", "Black", 2, "Alloy chainring for triple cranksets"},
	{"Chainring Bolts", "Hardware", "Chainring Bolts", "Silver", 1, "Hardened steel bolts for chainrings"},
	{"Flat Washer 1", "Hardware", "Flat Washer", "Silver", 1, "Flat washer hardware"},
	{"Keyed Washer", "Hardware", "Keyed Washer", "Silver", 1, "Keyed washer hardware"},
	{"Internal Lock Washer", "Hardware", "Internal Lock Washer", "Silver", 1, "Internal lock washer hardware"},
	{"Silver Hub Set", "Hardware", "Silver Hub", "Silver", 18, "Sealed silver hub set with metal plate guard"},
	{"Metal Plate 2", "Hardware", "Metal Plate", "Silver", 3, "Metal plate for frame reinforcement"},
	// Clothing.
	{"AWC Logo Cap", "Caps", "Cycling Cap", "Multi", 4, "Traditional style cycling cap with a low profile"},
	{"Long-Sleeve Logo Jersey, L", "Jerseys", "Long-Sleeve Logo Jersey", "Multi", 17, "Unisex long-sleeve AWC logo microfiber jersey"},
	{"Short-Sleeve Classic Jersey, M", "Jerseys", "Short-Sleeve Classic Jersey", "Yellow", 18, "Short sleeve classic breathable jersey"},
	{"Half-Finger Gloves, M", "Gloves", "Half-Finger Gloves", "Black", 10, "Synthetic palm and flexible spandex gloves"},
	{"Full-Finger Gloves, L", "Gloves", "Full-Finger Gloves", "Black", 16, "Full padding and gel palm gloves"},
	{"Mountain Bike Socks, M", "Socks", "Mountain Bike Socks", "White", 4, "Natural and synthetic fibers stay dry and provide cushioning"},
	{"Racing Socks, L", "Socks", "Racing Socks", "White", 4, "Thin lightweight racing socks"},
	{"Mens Sports Shorts, M", "Shorts", "Mens Sports Shorts", "Black", 24, "Lightweight windproof sports shorts"},
	{"Womens Tights, S", "Tights", "Womens Tights", "Black", 30, "Warm spandex tights with wind protection"},
	{"Classic Vest, M", "Vests", "Classic Vest", "Blue", 25, "Lightweight wind-resistant vest"},
	{"Mens Bib-Shorts, L", "Bib-Shorts", "Mens Bib-Shorts", "Multi", 33, "High quality bib-shorts with chamois padding"},
	// Accessories.
	{"Sport-100 Helmet, Red", "Helmets", "Sport-100", "Red", 13, "Universal fit well-vented helmet"},
	{"Sport-100 Helmet, Black", "Helmets", "Sport-100", "Black", 13, "Universal fit well-vented helmet"},
	{"Sport-100 Helmet, Blue", "Helmets", "Sport-100", "Blue", 13, "Universal fit well-vented helmet"},
	{"Mountain Tire", "Tires and Tubes", "Mountain Tire", "Black", 11, "Mountain tire with high-density rubber for rugged terrain"},
	{"Road Tire", "Tires and Tubes", "Road Tire", "Black", 9, "Smooth rolling road tire"},
	{"Touring Tire", "Tires and Tubes", "Touring Tire", "Black", 10, "All-season touring tire tube combination"},
	{"Patch Kit/8 Patches", "Tires and Tubes", "Patch Kit", "NA", 1, "Tire patch kit with eight patches"},
	{"Mountain Pump", "Pumps", "Mountain Pump", "Silver", 11, "Simple and lightweight mountain frame pump"},
	{"Minipump", "Pumps", "Minipump", "Silver", 9, "Clip-on mini pump"},
	{"Cable Lock", "Locks", "Cable Lock", "Black", 10, "Wraps to fit front and rear tires with internal lock"},
	{"Headlights - Dual-Beam", "Lights", "Headlights Dual-Beam", "NA", 15, "Dual-beam headlights with rechargeable batteries"},
	{"Headlights - Weatherproof", "Lights", "Headlights Weatherproof", "NA", 19, "Weatherproof headlights with water resistant housing"},
	{"Taillights - Battery-Powered", "Lights", "Taillights", "NA", 6, "Battery powered taillights"},
	{"Fender Set - Mountain", "Fenders", "Fender Set - Mountain", "Black", 9, "Clip-on fender set for mountain bikes"},
	{"Water Bottle - 30 oz.", "Bottles and Cages", "Water Bottle", "NA", 2, "AWC logo water bottle"},
	{"Mountain Bottle Cage", "Bottles and Cages", "Mountain Bottle Cage", "NA", 4, "Tough aluminum bottle cage for mountain riding"},
	{"Road Bottle Cage", "Bottles and Cages", "Road Bottle Cage", "NA", 3, "Aluminum road bottle cage"},
	{"Bike Wash - Dissolver", "Cleaners", "Bike Wash", "NA", 3, "Washes off the toughest road grime"},
	{"Hydration Pack - 70 oz.", "Hydration Packs", "Hydration Pack", "Silver", 21, "Versatile hydration pack with insulated reservoir"},
	{"Hitch Rack - 4-Bike", "Bike Racks", "Hitch Rack", "NA", 48, "Carries four bikes securely on a hitch rack"},
	{"All-Purpose Bike Stand", "Bike Stands", "All-Purpose Bike Stand", "NA", 63, "Perfect all-purpose bike stand for working on your bike"},
	{"Touring-Panniers, Large", "Panniers", "Touring-Panniers", "Grey", 50, "Durable waterproof panniers for touring"},
	{"Mountain Pump Mirror", "Mirrors", "Mirror", "NA", 7, "Handlebar mounted mirror"},
}

// awPromotions rows: name, type. "Sport Helmet Discount" and friends give
// the promotion dimension the product-word overlap the workload exploits.
var awPromotions = [][2]string{
	{"No Discount", "No Discount"},
	{"Volume Discount 11 to 14", "Volume Discount"},
	{"Mountain-100 Clearance Sale", "Discontinued Product"},
	{"Sport Helmet Discount-2002", "Seasonal Discount"},
	{"Road-650 Overstock", "Excess Inventory"},
	{"Mountain Tire Sale", "Excess Inventory"},
	{"Touring-3000 Promotion", "New Product"},
	{"Half-Price Pedal Sale", "Seasonal Discount"},
	{"LL Road Frame Sale", "Excess Inventory"},
}

var awCurrencies = []string{
	"US Dollar", "Australian Dollar", "Canadian Dollar", "EURO", "United Kingdom Pound",
}

var awFirstNames = []string{
	"Jon", "Eugene", "Ruben", "Christy", "Elizabeth", "Julio", "Janet", "Marco",
	"Rob", "Shannon", "Jacquelyn", "Curtis", "Lauren", "Ian", "Sydney", "Chloe",
	"Wyatt", "Shannon", "Clarence", "Luke", "Jordan", "Destiny", "Ethan", "Seth",
	"Russell", "Alejandro", "Harold", "Jessie", "Gerald", "Lucas", "Fernando",
	"Cesar", "Marc", "Gabriella", "Nina", "Colleen", "Blake", "Rafael",
}

var awLastNames = []string{
	"Yang", "Huang", "Torres", "Zhu", "Johnson", "Ruiz", "Alvarez", "Mehta",
	"Verhoff", "Carlson", "Suarez", "Lu", "Walker", "Jenkins", "Liang", "Young",
	"Hernandez", "Lopez", "Gonzalez", "Martin", "Serrano", "Raje", "Vazquez",
	"Coleman", "Gill", "Gomez", "Moreno", "Sanchez", "Sara", "Shen", "Blanco",
}

var awStreets = []string{
	// Several distinct "California Street" addresses reproduce the
	// paper's motivating ambiguity: the keyword "California" hits a large
	// noisy AddressLine1 group that the group-size normalization must
	// tame (§4.4), while the street-address interpretation stays a
	// plausible runner-up (Table 1's #2).
	"345 California Street", "1200 California Street", "78 California Street",
	"5420 California Street", "901 California Street",
	"7800 Corrinne Court", "2487 Riverside Drive",
	"1318 Lasalle Street", "9228 Via Del Sol", "4598 Manila Avenue",
	"1399 Firestone Drive", "6056 Hill Street", "7166 Brock Lane",
	"9728 Blackberry Lane", "636 Vine Hill Way", "2681 Eagle Peak",
	"7553 Harness Circle", "1226 Shoe Court", "1399 Salmon Court",
	"44 Washington Avenue", "310 Columbus Court",
}

var awEducations = []string{
	"Bachelors", "Partial College", "High School", "Partial High School", "Graduate Degree",
}

var awOccupations = []string{
	"Professional", "Skilled Manual", "Clerical", "Management", "Manual",
}

// awResellerNames generate the reseller dimension; business words overlap
// the product vocabulary deliberately (e.g. "Valley", "Bike").
var awResellerWords1 = []string{
	"Valley", "Metro", "Coastal", "Downtown", "Riverside", "Summit", "Alpine",
	"Pacific", "Golden", "Urban", "Rural", "Classic", "Premier", "Elite",
}
var awResellerWords2 = []string{
	"Bicycle Specialists", "Bike Store", "Cycle Shop", "Sports Depot",
	"Bicycle Supply", "Cycling Outlet", "Bike Works", "Sport Mart",
	"Wheel Warehouse", "Cycle Center",
}

var awBusinessTypes = []string{"Value Added Reseller", "Specialty Bike Shop", "Warehouse"}

var awDepartments = []string{"Sales", "Marketing", "Production", "Engineering", "Shipping and Receiving"}

var awTitles = []string{
	"Sales Representative", "Sales Manager", "Marketing Specialist",
	"Production Technician", "Design Engineer", "Shipping Clerk",
}

var awMonthNames = []string{
	"January", "February", "March", "April", "May", "June",
	"July", "August", "September", "October", "November", "December",
}

var awDayNames = []string{
	"Sunday", "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday",
}
