package dataset

import (
	"fmt"
	"strings"
	"sync"

	"kdap/internal/fulltext"
	"kdap/internal/relation"
	"kdap/internal/schemagraph"
	"kdap/internal/stats"
)

// AWOnlineFactCount is the number of FactInternetSales rows, matching the
// paper's "more than 60,000 fact records".
const AWOnlineFactCount = 60398

var (
	awOnlineOnce sync.Once
	awOnlineWH   *Warehouse
)

// AWOnline returns the synthetic AW_ONLINE warehouse (5 dimensions, 10
// tables, 3 hierarchical dimensions, >60k facts, >20 full-text attribute
// domains — the shape reported in §6.1). The warehouse is built once and
// shared; it is read-only after construction.
func AWOnline() *Warehouse {
	awOnlineOnce.Do(func() { awOnlineWH = buildAWOnline() })
	return awOnlineWH
}

// ftCol returns a full-text string column definition.
func ftCol(name string) relation.Column {
	return relation.Column{Name: name, Kind: relation.KindString, FullText: true}
}

// sCol returns a plain string column definition.
func sCol(name string) relation.Column {
	return relation.Column{Name: name, Kind: relation.KindString}
}

// iCol returns an int column definition.
func iCol(name string) relation.Column {
	return relation.Column{Name: name, Kind: relation.KindInt}
}

// fCol returns a float column definition.
func fCol(name string) relation.Column {
	return relation.Column{Name: name, Kind: relation.KindFloat}
}

// fk builds a single-column foreign key.
func fk(col, refTable, refCol string) relation.ForeignKey {
	return relation.ForeignKey{Column: col, RefTable: refTable, RefColumn: refCol}
}

// awShared holds the dimension tables and key maps common to both
// AdventureWorks databases.
type awShared struct {
	territoryKeys map[string]int64 // region -> key
	geoCount      int64
	geoCountry    []string // geography row index -> country name
	subcatKeys    map[string]int64
	catKeys       map[string]int64
	productCount  int64
	dateCount     int64
}

// buildAWDimCommon creates the territory, geography, product (category/
// subcategory/product), date, promotion, and currency tables in db and
// populates them. withModel adds the DimProductModel snowflake level used
// by AW_RESELLER.
func buildAWDimCommon(db *relation.Database, withModel bool) *awShared {
	sh := &awShared{
		territoryKeys: map[string]int64{},
		subcatKeys:    map[string]int64{},
		catKeys:       map[string]int64{},
	}

	territory := db.MustCreateTable(relation.MustSchema("DimSalesTerritory", []relation.Column{
		iCol("TerritoryKey"), ftCol("Region"), ftCol("Country"), ftCol("TerritoryGroup"),
	}, "TerritoryKey", nil))
	for i, t := range awTerritory {
		territory.MustAppend(relation.Int(int64(i+1)), relation.String(t[0]), relation.String(t[1]), relation.String(t[2]))
		sh.territoryKeys[t[0]] = int64(i + 1)
	}

	geo := db.MustCreateTable(relation.MustSchema("DimGeography", []relation.Column{
		iCol("GeographyKey"), ftCol("City"), ftCol("StateProvinceName"),
		ftCol("CountryRegionName"), ftCol("CountryRegionCode"), iCol("TerritoryKey"),
	}, "GeographyKey", []relation.ForeignKey{
		fk("TerritoryKey", "DimSalesTerritory", "TerritoryKey"),
	}))
	for i, g := range awGeo {
		geo.MustAppend(relation.Int(int64(i+1)), relation.String(g[0]), relation.String(g[1]),
			relation.String(g[2]), relation.String(g[3]), relation.Int(sh.territoryKeys[g[4]]))
		sh.geoCountry = append(sh.geoCountry, g[2])
	}
	sh.geoCount = int64(len(awGeo))

	cat := db.MustCreateTable(relation.MustSchema("DimProductCategory", []relation.Column{
		iCol("CategoryKey"), ftCol("CategoryName"),
	}, "CategoryKey", nil))
	for i, c := range awCategories {
		cat.MustAppend(relation.Int(int64(i+1)), relation.String(c))
		sh.catKeys[c] = int64(i + 1)
	}

	subcat := db.MustCreateTable(relation.MustSchema("DimProductSubcategory", []relation.Column{
		iCol("SubcategoryKey"), ftCol("SubcategoryName"), iCol("CategoryKey"),
	}, "SubcategoryKey", []relation.ForeignKey{
		fk("CategoryKey", "DimProductCategory", "CategoryKey"),
	}))
	for i, sc := range awSubcats {
		subcat.MustAppend(relation.Int(int64(i+1)), relation.String(sc[0]), relation.Int(sh.catKeys[sc[1]]))
		sh.subcatKeys[sc[0]] = int64(i + 1)
	}

	var modelKeys map[string]int64
	if withModel {
		model := db.MustCreateTable(relation.MustSchema("DimProductModel", []relation.Column{
			iCol("ModelKey"), ftCol("ModelName"), ftCol("ProductLine"),
		}, "ModelKey", nil))
		modelKeys = map[string]int64{}
		for _, p := range awProducts {
			if _, ok := modelKeys[p.model]; ok {
				continue
			}
			k := int64(len(modelKeys) + 1)
			modelKeys[p.model] = k
			line := "Standard"
			switch p.subcat {
			case "Mountain Bikes", "Mountain Frames":
				line = "Mountain"
			case "Road Bikes", "Road Frames":
				line = "Road"
			case "Touring Bikes", "Touring Frames":
				line = "Touring"
			}
			model.MustAppend(relation.Int(k), relation.String(p.model), relation.String(line))
		}
	}

	prodCols := []relation.Column{
		iCol("ProductKey"), ftCol("EnglishProductName"), ftCol("ModelName"),
		ftCol("Color"), ftCol("EnglishDescription"), fCol("DealerPrice"),
		iCol("SubcategoryKey"),
	}
	prodFKs := []relation.ForeignKey{
		fk("SubcategoryKey", "DimProductSubcategory", "SubcategoryKey"),
	}
	if withModel {
		prodCols = append(prodCols, iCol("ModelKey"))
		prodFKs = append(prodFKs, fk("ModelKey", "DimProductModel", "ModelKey"))
	}
	prod := db.MustCreateTable(relation.MustSchema("DimProduct", prodCols, "ProductKey", prodFKs))
	for i, p := range awProducts {
		row := []relation.Value{
			relation.Int(int64(i + 1)), relation.String(p.name), relation.String(p.model),
			relation.String(p.color), relation.String(p.description),
			relation.Float(p.dealerPrice), relation.Int(sh.subcatKeys[p.subcat]),
		}
		if withModel {
			row = append(row, relation.Int(modelKeys[p.model]))
		}
		if _, err := prod.Append(row); err != nil {
			panic(err)
		}
	}
	sh.productCount = int64(len(awProducts))

	date := db.MustCreateTable(relation.MustSchema("DimDate", []relation.Column{
		iCol("DateKey"), ftCol("FullDateLabel"), ftCol("DayName"),
		ftCol("MonthName"), sCol("CalendarQuarter"), ftCol("CalendarYear"),
	}, "DateKey", nil))
	dk := int64(1)
	for year := 2000; year <= 2004; year++ {
		for m := 0; m < 12; m++ {
			for d := 1; d <= 28; d++ {
				date.MustAppend(
					relation.Int(dk),
					relation.String(fmt.Sprintf("%s %d, %d", awMonthNames[m], d, year)),
					relation.String(awDayNames[int(dk)%7]),
					relation.String(awMonthNames[m]),
					relation.String(fmt.Sprintf("Q%d %d", m/3+1, year)),
					relation.String(fmt.Sprintf("%d", year)),
				)
				dk++
			}
		}
	}
	sh.dateCount = dk - 1

	promo := db.MustCreateTable(relation.MustSchema("DimPromotion", []relation.Column{
		iCol("PromotionKey"), ftCol("EnglishPromotionName"), ftCol("EnglishPromotionType"),
	}, "PromotionKey", nil))
	for i, p := range awPromotions {
		promo.MustAppend(relation.Int(int64(i+1)), relation.String(p[0]), relation.String(p[1]))
	}

	currency := db.MustCreateTable(relation.MustSchema("DimCurrency", []relation.Column{
		iCol("CurrencyKey"), ftCol("CurrencyName"),
	}, "CurrencyKey", nil))
	for i, c := range awCurrencies {
		currency.MustAppend(relation.Int(int64(i+1)), relation.String(c))
	}

	return sh
}

// currencyForCountry maps a customer's country to the transaction
// currency key.
func currencyForCountry(country string) int64 {
	switch country {
	case "Australia":
		return 2
	case "Canada":
		return 3
	case "Germany", "France":
		return 4
	case "United Kingdom":
		return 5
	default:
		return 1 // US Dollar
	}
}

// pickProduct chooses a product index with country-specific preferences:
// US buyers favor bikes, France favors clothing, Australia favors
// accessories, Germany favors components. The skew gives the explore
// phase genuine surprises and the numeric attributes country-dependent
// distributions.
func pickProduct(rng *stats.RNG, country string) int {
	var subcatBias string
	switch country {
	case "France":
		subcatBias = "Clothing"
	case "Australia":
		subcatBias = "Accessories"
	case "Germany":
		subcatBias = "Components"
	default:
		subcatBias = "Bikes"
	}
	for tries := 0; tries < 4; tries++ {
		i := rng.Intn(len(awProducts))
		cat := ""
		for _, sc := range awSubcats {
			if sc[0] == awProducts[i].subcat {
				cat = sc[1]
				break
			}
		}
		if cat == subcatBias || rng.Float64() < 0.45 {
			return i
		}
	}
	return rng.Intn(len(awProducts))
}

// promotionFor returns a promotion key, usually "No Discount" but biased
// toward the product-specific promotions when they apply.
func promotionFor(rng *stats.RNG, p awProduct, month int) int64 {
	if rng.Float64() < 0.75 {
		return 1 // No Discount
	}
	switch {
	case p.subcat == "Helmets":
		return 4 // Sport Helmet Discount-2002
	case p.subcat == "Pedals":
		return 8 // Half-Price Pedal Sale
	case p.model == "Mountain Tire" && (month == 10 || month == 11):
		return 6 // Mountain Tire Sale (November/December heavy)
	case p.model == "Mountain Tire":
		return 6
	case p.model == "Road-650":
		return 5 // Road-650 Overstock
	case p.model == "Mountain-100":
		return 3 // Mountain-100 Clearance Sale
	case p.model == "Touring-3000":
		return 7 // Touring-3000 Promotion
	case p.model == "LL Road Frame":
		return 9
	default:
		return int64(1 + rng.Intn(2)) // No Discount / Volume Discount
	}
}

// buildAWOnlineCustomers creates and populates DimCustomer with
// nCustomers generated rows plus the pinned Fernando row (key
// nCustomers+1), returning each customer's geography row index.
func buildAWOnlineCustomers(db *relation.Database, rng *stats.RNG, sh *awShared, nCustomers int) []int {
	customer := db.MustCreateTable(relation.MustSchema("DimCustomer", []relation.Column{
		iCol("CustomerKey"), ftCol("FirstName"), ftCol("LastName"),
		ftCol("AddressLine1"), ftCol("EmailAddress"), ftCol("Phone"),
		ftCol("Education"), ftCol("Occupation"), fCol("YearlyIncome"),
		iCol("GeographyKey"),
	}, "CustomerKey", []relation.ForeignKey{
		fk("GeographyKey", "DimGeography", "GeographyKey"),
	}))

	custGeo := make([]int, nCustomers+1)
	for ck := 1; ck <= nCustomers; ck++ {
		fn := awFirstNames[rng.Intn(len(awFirstNames))]
		ln := awLastNames[rng.Intn(len(awLastNames))]
		addr := awStreets[rng.Intn(len(awStreets))]
		email := fmt.Sprintf("%s%d@adventure-works.com", strings.ToLower(fn), ck%100)
		phone := fmt.Sprintf("1%09d", 245550000+ck)
		edu := awEducations[rng.Intn(len(awEducations))]
		occ := awOccupations[rng.Intn(len(awOccupations))]
		gi := rng.Intn(int(sh.geoCount))
		custGeo[ck] = gi
		income := awIncome(rng, occ, edu, sh.geoCountry[gi])
		customer.MustAppend(relation.Int(int64(ck)), relation.String(fn), relation.String(ln),
			relation.String(addr), relation.String(email), relation.String(phone),
			relation.String(edu), relation.String(occ), relation.Float(income),
			relation.Int(int64(gi+1)))
	}
	// Pin the workload's named customers: fernando35@adventure-works.com
	// and a first name "Sydney" are guaranteed by construction (Fernando
	// and Sydney are in the name pool; make one of each explicit).
	customer.MustAppend(relation.Int(int64(nCustomers+1)), relation.String("Fernando"), relation.String("Ruiz"),
		relation.String("2487 Riverside Drive"), relation.String("fernando35@adventure-works.com"),
		relation.String("1245550139"), relation.String("Bachelors"), relation.String("Professional"),
		relation.Float(70000), relation.Int(1))
	custGeo[0] = 0 // unused slot guard
	return custGeo
}

// awOnlineFactSchema returns the FactInternetSales schema.
func awOnlineFactSchema() *relation.Schema {
	return relation.MustSchema("FactInternetSales", []relation.Column{
		iCol("SalesKey"), iCol("ProductKey"), iCol("CustomerKey"),
		iCol("OrderDateKey"), iCol("PromotionKey"), iCol("CurrencyKey"),
		iCol("OrderQuantity"), fCol("UnitPrice"),
	}, "SalesKey", []relation.ForeignKey{
		fk("ProductKey", "DimProduct", "ProductKey"),
		fk("CustomerKey", "DimCustomer", "CustomerKey"),
		fk("OrderDateKey", "DimDate", "DateKey"),
		fk("PromotionKey", "DimPromotion", "PromotionKey"),
		fk("CurrencyKey", "DimCurrency", "CurrencyKey"),
	})
}

// genAWOnlineFacts streams n FactInternetSales rows, in SalesKey order,
// into emit. The sequence is a pure function of (rng seed, n,
// clusteredDates, dimensions), so resident and disk-backed builds of
// the same scale hold byte-identical data. With clusteredDates the
// order date advances with the sales key (facts arrive in time order,
// the realistic warehouse-ingest pattern), which is what gives date
// and key zone maps their pruning power at scale.
func genAWOnlineFacts(rng *stats.RNG, sh *awShared, custGeo []int, nCustomers, n int, clusteredDates bool, emit func(vals []relation.Value) error) error {
	dateCount := int(sh.dateCount)
	for sk := int64(1); sk <= int64(n); sk++ {
		ck := 1 + rng.Intn(nCustomers)
		country := sh.geoCountry[custGeo[ck]]
		pi := pickProduct(rng, country)
		p := awProducts[pi]
		var dk int64
		if clusteredDates {
			base := int((sk - 1) * int64(dateCount) / int64(n))
			jitter := rng.Intn(57) - 28
			d := base + jitter
			if d < 0 {
				d = 0
			}
			if d >= dateCount {
				d = dateCount - 1
			}
			dk = int64(d + 1)
		} else {
			dk = int64(1 + rng.Intn(dateCount))
		}
		month := int((dk - 1) / 28 % 12)
		promoKey := promotionFor(rng, p, month)
		qty := int64(1)
		if p.dealerPrice < 100 {
			qty = int64(1 + rng.Intn(4))
		}
		price := p.dealerPrice * (1.25 + 0.25*rng.Float64())
		err := emit([]relation.Value{
			relation.Int(sk), relation.Int(int64(pi + 1)), relation.Int(int64(ck)),
			relation.Int(dk), relation.Int(promoKey), relation.Int(currencyForCountry(country)),
			relation.Int(qty), relation.Float(price),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// awOnlineGraph builds the AW_ONLINE schema graph over db.
func awOnlineGraph(db *relation.Database) *schemagraph.Graph {
	g := schemagraph.New(db, "FactInternetSales")
	mustAddDim := func(d *schemagraph.Dimension) {
		if err := g.AddDimension(d); err != nil {
			panic(err)
		}
	}
	mustAddDim(&schemagraph.Dimension{
		Name:   "Product",
		Tables: []string{"DimProduct", "DimProductSubcategory", "DimProductCategory"},
		Hierarchies: []schemagraph.Hierarchy{{
			Name: "Category",
			Levels: []schemagraph.AttrRef{
				{Table: "DimProductCategory", Attr: "CategoryName"},
				{Table: "DimProductSubcategory", Attr: "SubcategoryName"},
				{Table: "DimProduct", Attr: "EnglishProductName"},
			},
		}},
		GroupBy: []schemagraph.AttrRef{
			{Table: "DimProductSubcategory", Attr: "SubcategoryName"},
			{Table: "DimProductCategory", Attr: "CategoryName"},
			{Table: "DimProduct", Attr: "ModelName"},
			{Table: "DimProduct", Attr: "Color"},
			{Table: "DimProduct", Attr: "DealerPrice"},
		},
	})
	mustAddDim(&schemagraph.Dimension{
		Name:   "Customer",
		Tables: []string{"DimCustomer", "DimGeography", "DimSalesTerritory"},
		Hierarchies: []schemagraph.Hierarchy{{
			Name: "Geography",
			Levels: []schemagraph.AttrRef{
				{Table: "DimSalesTerritory", Attr: "TerritoryGroup"},
				{Table: "DimGeography", Attr: "CountryRegionName"},
				{Table: "DimGeography", Attr: "StateProvinceName"},
				{Table: "DimGeography", Attr: "City"},
			},
		}},
		GroupBy: []schemagraph.AttrRef{
			{Table: "DimGeography", Attr: "City"},
			{Table: "DimGeography", Attr: "StateProvinceName"},
			{Table: "DimGeography", Attr: "CountryRegionName"},
			{Table: "DimCustomer", Attr: "Occupation"},
			{Table: "DimCustomer", Attr: "Education"},
			{Table: "DimCustomer", Attr: "YearlyIncome"},
		},
	})
	mustAddDim(&schemagraph.Dimension{
		Name:   "Date",
		Tables: []string{"DimDate"},
		Hierarchies: []schemagraph.Hierarchy{{
			Name: "Calendar",
			Levels: []schemagraph.AttrRef{
				{Table: "DimDate", Attr: "CalendarYear"},
				{Table: "DimDate", Attr: "CalendarQuarter"},
				{Table: "DimDate", Attr: "MonthName"},
				{Table: "DimDate", Attr: "FullDateLabel"},
			},
		}},
		GroupBy: []schemagraph.AttrRef{
			{Table: "DimDate", Attr: "CalendarYear"},
			{Table: "DimDate", Attr: "MonthName"},
			{Table: "DimDate", Attr: "DayName"},
		},
	})
	mustAddDim(&schemagraph.Dimension{
		Name:   "Promotion",
		Tables: []string{"DimPromotion"},
		GroupBy: []schemagraph.AttrRef{
			{Table: "DimPromotion", Attr: "EnglishPromotionName"},
			{Table: "DimPromotion", Attr: "EnglishPromotionType"},
		},
	})
	mustAddDim(&schemagraph.Dimension{
		Name:   "Currency",
		Tables: []string{"DimCurrency"},
		GroupBy: []schemagraph.AttrRef{
			{Table: "DimCurrency", Attr: "CurrencyName"},
		},
	})
	if err := g.Build(); err != nil {
		panic(err)
	}
	return g
}

func buildAWOnline() *Warehouse {
	db := relation.NewDatabase("AW_ONLINE")
	sh := buildAWDimCommon(db, false)
	rng := stats.NewRNG(2007)

	const nCustomers = 2500
	custGeo := buildAWOnlineCustomers(db, rng, sh, nCustomers)

	fact := db.MustCreateTable(awOnlineFactSchema())
	_ = genAWOnlineFacts(rng, sh, custGeo, nCustomers, AWOnlineFactCount, false, func(vals []relation.Value) error {
		fact.MustAppend(vals...)
		return nil
	})

	g := awOnlineGraph(db)
	db.Freeze()
	ix := fulltext.NewIndex()
	ix.IndexDatabase(db)
	ix.Freeze()
	return &Warehouse{DB: db, Graph: g, Index: ix}
}

// awIncome draws a yearly income from an occupation/education base with a
// country multiplier and noise; the country dependence is what makes the
// Figure 5 income-vs-geography correlations non-trivial.
func awIncome(rng *stats.RNG, occupation, education, country string) float64 {
	base := 40000.0
	switch occupation {
	case "Professional":
		base = 80000
	case "Management":
		base = 95000
	case "Skilled Manual":
		base = 55000
	case "Clerical":
		base = 38000
	case "Manual":
		base = 25000
	}
	switch education {
	case "Graduate Degree":
		base *= 1.3
	case "Bachelors":
		base *= 1.15
	case "Partial High School":
		base *= 0.8
	}
	switch country {
	case "United States":
		base *= 1.15
	case "Germany", "United Kingdom":
		base *= 1.05
	case "France":
		base *= 0.95
	case "Australia":
		base *= 1.0
	case "Canada":
		base *= 0.98
	}
	income := base * (0.7 + 0.6*rng.Float64())
	// The original dataset bands YearlyIncome in 10,000 steps.
	banded := float64(int(income/10000)) * 10000
	if banded < 10000 {
		banded = 10000
	}
	return banded
}
