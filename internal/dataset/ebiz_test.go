package dataset

import (
	"testing"

	"kdap/internal/fulltext"
	"kdap/internal/relation"
)

func TestEBizShape(t *testing.T) {
	wh := EBiz()
	if err := wh.DB.Validate(true); err != nil {
		t.Fatalf("referential integrity: %v", err)
	}
	st := wh.DB.Stats()
	if st.Tables != 12 {
		t.Errorf("tables = %d, want 12", st.Tables)
	}
	fact := wh.DB.Table("TRANSITEM")
	if fact.Len() != EBizFactCount {
		t.Errorf("fact rows = %d, want %d", fact.Len(), EBizFactCount)
	}
	if len(wh.Graph.Dimensions()) != 4 {
		t.Errorf("dimensions = %d, want 4 (Time, Store, Customer, Product)", len(wh.Graph.Dimensions()))
	}
}

func TestEBizDeterministic(t *testing.T) {
	a, b := EBiz(), EBiz()
	fa, fb := a.DB.Table("TRANSITEM"), b.DB.Table("TRANSITEM")
	if fa.Len() != fb.Len() {
		t.Fatal("non-deterministic fact count")
	}
	for i := 0; i < fa.Len(); i += 97 {
		ra, rb := fa.Row(i), fb.Row(i)
		for c := range ra {
			if !ra[c].Equal(rb[c]) {
				t.Fatalf("row %d col %d differs: %#v vs %#v", i, c, ra[c], rb[c])
			}
		}
	}
}

// The running example's ambiguities must exist in the data: "Columbus"
// is both a city and a holiday, "LCD" appears in multiple product groups
// and product names across hierarchy levels.
func TestEBizColumbusAmbiguity(t *testing.T) {
	wh := EBiz()
	hits := wh.Index.Search("Columbus", fulltext.Options{})
	tables := map[string]bool{}
	for _, h := range hits {
		tables[h.Doc.Table] = true
	}
	if !tables["LOC"] || !tables["HOLIDAY"] {
		t.Errorf("Columbus must hit LOC and HOLIDAY; got tables %v", tables)
	}
	if !tables["CUSTOMER"] {
		t.Errorf("a customer surnamed Columbus should exist; got %v", tables)
	}
}

func TestEBizLCDAmbiguity(t *testing.T) {
	wh := EBiz()
	hits := wh.Index.Search("LCD", fulltext.Options{})
	attrs := map[string]bool{}
	for _, h := range hits {
		attrs[h.Doc.Table+"."+h.Doc.Attr] = true
	}
	if !attrs["PGROUP.GroupName"] || !attrs["PRODUCT.ProductName"] {
		t.Errorf("LCD should hit group names and product names; got %v", attrs)
	}
}

func TestEBizThreeLocJoinPaths(t *testing.T) {
	wh := EBiz()
	paths := wh.Graph.JoinPaths("LOC")
	if len(paths) != 3 {
		for _, p := range paths {
			t.Logf("  %v", p)
		}
		t.Fatalf("LOC paths = %d, want 3 (Store, Buyer, Seller)", len(paths))
	}
}

func TestEBizHolidayReachesFact(t *testing.T) {
	wh := EBiz()
	paths := wh.Graph.JoinPaths("HOLIDAY")
	if len(paths) != 1 {
		t.Fatalf("HOLIDAY paths = %d", len(paths))
	}
	if paths[0].Dim != "Time" {
		t.Errorf("holiday path dim = %q", paths[0].Dim)
	}
}

func TestEBizMeasureColumnsPresent(t *testing.T) {
	wh := EBiz()
	fact := wh.DB.Table("TRANSITEM")
	for _, col := range []string{"Quantity", "UnitPrice"} {
		if !fact.Schema().HasColumn(col) {
			t.Errorf("fact lacks %s", col)
		}
	}
	// Sanity: revenue of the whole dataspace is positive.
	var rev float64
	fact.Scan(func(id int, row []relation.Value) bool {
		rev += row[fact.Schema().ColumnIndex("Quantity")].AsFloat() *
			row[fact.Schema().ColumnIndex("UnitPrice")].AsFloat()
		return true
	})
	if rev <= 0 {
		t.Errorf("total revenue = %g", rev)
	}
}

func TestEBizIndexCoversDimensions(t *testing.T) {
	wh := EBiz()
	if wh.Index.DocCount() < 50 {
		t.Errorf("index too small: %d docs", wh.Index.DocCount())
	}
	for _, q := range []string{"California", "Projectors", "October", "Business"} {
		if hits := wh.Index.Search(q, fulltext.Options{}); len(hits) == 0 {
			t.Errorf("query %q found nothing", q)
		}
	}
}
