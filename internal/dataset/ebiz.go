// Package dataset builds the two data warehouses the reproduction runs
// on: the EBiz e-commerce schema of the paper's Figure 2 (the running
// example, including its deliberate ambiguities) and a synthetic
// AdventureWorks-shaped pair (AW_ONLINE / AW_RESELLER) substituting for
// the SQL Server 2005 sample database used in §6. All generation is
// deterministic from a fixed seed.
package dataset

import (
	"fmt"

	"kdap/internal/fulltext"
	"kdap/internal/relation"
	"kdap/internal/schemagraph"
	"kdap/internal/stats"
)

// Warehouse bundles a generated database with its schema graph and
// full-text index, ready for the KDAP engine.
type Warehouse struct {
	DB    *relation.Database
	Graph *schemagraph.Graph
	Index *fulltext.Index
}

// ebizLocation rows: City, State, Country.
var ebizLocations = [][3]string{
	{"Columbus", "Ohio", "United States"},
	{"Cleveland", "Ohio", "United States"},
	{"Cincinnati", "Ohio", "United States"},
	{"San Jose", "California", "United States"},
	{"San Francisco", "California", "United States"},
	{"San Antonio", "Texas", "United States"},
	{"Los Angeles", "California", "United States"},
	{"Seattle", "Washington", "United States"},
	{"Portland", "Oregon", "United States"},
	{"New York", "New York", "United States"},
	{"Chicago", "Illinois", "United States"},
	{"Austin", "Texas", "United States"},
	{"Toronto", "Ontario", "Canada"},
	{"Vancouver", "British Columbia", "Canada"},
}

var ebizHolidays = []string{
	"Columbus Day", "Christmas Day", "Thanksgiving Day", "New Year Day", "Independence Day",
}

// ebizProducts rows: product name, group, line, UNSPSC class, UNSPSC
// family, list price. The vocabulary reproduces the paper's introduction:
// "LCD" appears as a projector technology, a flat-panel monitor group, and
// an LCD-TV category, so the keyword "LCD" has genuine attribute-instance
// ambiguity.
var ebizProducts = []struct {
	name, group, line, class, family string
	price                            float64
}{
	{"PowerBeam 2000 (LCD)", "LCD Projectors", "Electronics", "Projectors", "Office Electronics", 899},
	{"PowerBeam 3000 (LCD)", "LCD Projectors", "Electronics", "Projectors", "Office Electronics", 1299},
	{"CineBright DLP", "DLP Projectors", "Electronics", "Projectors", "Office Electronics", 1099},
	{"ViewMax 19", "Flat Panel(LCD)", "Monitor", "Monitors", "Computer Equipment", 329},
	{"ViewMax 24", "Flat Panel(LCD)", "Monitor", "Monitors", "Computer Equipment", 449},
	{"TubeView 17", "CRT Monitors", "Monitor", "Monitors", "Computer Equipment", 159},
	{"CrystalVision 32", "LCD TVs", "Televisions", "Televisions", "Home Electronics", 799},
	{"CrystalVision 42", "LCD TVs", "Televisions", "Televisions", "Home Electronics", 1399},
	{"PlasmaStar 50", "Plasma TVs", "Televisions", "Televisions", "Home Electronics", 1999},
	{"RetroTube TV 27", "CRT TVs", "Televisions", "Televisions", "Home Electronics", 299},
	{"RecordMaster VCR", "VCR", "Video", "Video Equipment", "Home Electronics", 129},
	{"DiscPlayer DVD", "DVD Players", "Video", "Video Equipment", "Home Electronics", 179},
	{"OfficeSuite Pro", "Productivity Software", "Software", "Business Software", "Software", 249},
	{"PhotoStudio", "Graphics Software", "Software", "Business Software", "Software", 199},
	{"SoundWave Speakers", "Speakers", "Accessories", "Audio", "Home Electronics", 89},
	{"ClearCall Headset", "Headsets", "Accessories", "Audio", "Office Electronics", 59},
}

var ebizFirstNames = []string{
	"Alice", "Bob", "Carol", "David", "Emma", "Frank", "Grace", "Henry",
	"Jose", "Maria", "Nina", "Oscar",
}
var ebizLastNames = []string{
	"Smith", "Johnson", "Lee", "Garcia", "Chen", "Patel", "Brown", "Davis",
	"Columbus", "Jones", "Miller", "Wilson",
}

// EBizFactCount is the number of TRANSITEM rows EBiz generates.
const EBizFactCount = 4000

// EBiz builds the Figure 2 e-commerce warehouse at its default size.
func EBiz() *Warehouse { return EBizSized(EBizFactCount) }

// EBizSized builds the Figure 2 e-commerce warehouse. The schema reproduces
// every structural feature the paper leans on: the Time dimension split
// into DATE and HOLIDAY tables; the LOC table shared by the Store and
// Customer dimensions; the ACCOUNT table joining the fact header on both
// BuyerKey and SellerKey (three join paths from LOC to the fact table);
// the Product dimension with two hierarchies (UNSPSC and Line/Group)
// meeting at PRODUCT; and a TRANS/TRANSITEM fact complex whose grain is
// the transaction item. factCount sets the TRANSITEM row count, allowing
// scaling benchmarks over the same schema.
func EBizSized(factCount int) *Warehouse {
	db := relation.NewDatabase("EBiz")

	holiday := db.MustCreateTable(relation.MustSchema("HOLIDAY", []relation.Column{
		{Name: "HolidayKey", Kind: relation.KindInt},
		{Name: "Event", Kind: relation.KindString, FullText: true},
	}, "HolidayKey", nil))

	date := db.MustCreateTable(relation.MustSchema("DATE", []relation.Column{
		{Name: "DateKey", Kind: relation.KindInt},
		{Name: "DateStr", Kind: relation.KindString, FullText: true},
		{Name: "Week", Kind: relation.KindString},
		{Name: "Month", Kind: relation.KindString, FullText: true},
		{Name: "Quarter", Kind: relation.KindString},
		{Name: "Year", Kind: relation.KindInt},
		{Name: "HolidayKey", Kind: relation.KindInt},
	}, "DateKey", []relation.ForeignKey{
		{Column: "HolidayKey", RefTable: "HOLIDAY", RefColumn: "HolidayKey"},
	}))

	loc := db.MustCreateTable(relation.MustSchema("LOC", []relation.Column{
		{Name: "LocKey", Kind: relation.KindInt},
		{Name: "City", Kind: relation.KindString, FullText: true},
		{Name: "State", Kind: relation.KindString, FullText: true},
		{Name: "Country", Kind: relation.KindString, FullText: true},
	}, "LocKey", nil))

	store := db.MustCreateTable(relation.MustSchema("STORE", []relation.Column{
		{Name: "StoreKey", Kind: relation.KindInt},
		{Name: "StoreName", Kind: relation.KindString, FullText: true},
		{Name: "LocKey", Kind: relation.KindInt},
	}, "StoreKey", []relation.ForeignKey{
		{Column: "LocKey", RefTable: "LOC", RefColumn: "LocKey"},
	}))

	customer := db.MustCreateTable(relation.MustSchema("CUSTOMER", []relation.Column{
		{Name: "CustKey", Kind: relation.KindInt},
		{Name: "FirstName", Kind: relation.KindString, FullText: true},
		{Name: "LastName", Kind: relation.KindString, FullText: true},
		{Name: "Age", Kind: relation.KindInt},
		{Name: "Income", Kind: relation.KindFloat},
		{Name: "LocKey", Kind: relation.KindInt},
	}, "CustKey", []relation.ForeignKey{
		{Column: "LocKey", RefTable: "LOC", RefColumn: "LocKey"},
	}))

	account := db.MustCreateTable(relation.MustSchema("ACCOUNT", []relation.Column{
		{Name: "AccountKey", Kind: relation.KindInt},
		{Name: "CustKey", Kind: relation.KindInt},
		{Name: "AccountType", Kind: relation.KindString, FullText: true},
	}, "AccountKey", []relation.ForeignKey{
		{Column: "CustKey", RefTable: "CUSTOMER", RefColumn: "CustKey"},
	}))

	unspsc := db.MustCreateTable(relation.MustSchema("UNSPSC", []relation.Column{
		{Name: "UnspscKey", Kind: relation.KindInt},
		{Name: "ClassTitle", Kind: relation.KindString, FullText: true},
		{Name: "FamilyTitle", Kind: relation.KindString, FullText: true},
	}, "UnspscKey", nil))

	pline := db.MustCreateTable(relation.MustSchema("PLINE", []relation.Column{
		{Name: "LineKey", Kind: relation.KindInt},
		{Name: "LineName", Kind: relation.KindString, FullText: true},
	}, "LineKey", nil))

	pgroup := db.MustCreateTable(relation.MustSchema("PGROUP", []relation.Column{
		{Name: "PGroupKey", Kind: relation.KindInt},
		{Name: "GroupName", Kind: relation.KindString, FullText: true},
		{Name: "LineKey", Kind: relation.KindInt},
	}, "PGroupKey", []relation.ForeignKey{
		{Column: "LineKey", RefTable: "PLINE", RefColumn: "LineKey"},
	}))

	product := db.MustCreateTable(relation.MustSchema("PRODUCT", []relation.Column{
		{Name: "ProductKey", Kind: relation.KindInt},
		{Name: "ProductName", Kind: relation.KindString, FullText: true},
		{Name: "ListPrice", Kind: relation.KindFloat},
		{Name: "UnspscKey", Kind: relation.KindInt},
		{Name: "PGroupKey", Kind: relation.KindInt},
	}, "ProductKey", []relation.ForeignKey{
		{Column: "UnspscKey", RefTable: "UNSPSC", RefColumn: "UnspscKey"},
		{Column: "PGroupKey", RefTable: "PGROUP", RefColumn: "PGroupKey"},
	}))

	trans := db.MustCreateTable(relation.MustSchema("TRANS", []relation.Column{
		{Name: "TransKey", Kind: relation.KindInt},
		{Name: "DateKey", Kind: relation.KindInt},
		{Name: "StoreKey", Kind: relation.KindInt},
		{Name: "BuyerKey", Kind: relation.KindInt},
		{Name: "SellerKey", Kind: relation.KindInt},
	}, "TransKey", []relation.ForeignKey{
		{Column: "DateKey", RefTable: "DATE", RefColumn: "DateKey"},
		{Column: "StoreKey", RefTable: "STORE", RefColumn: "StoreKey"},
		{Column: "BuyerKey", RefTable: "ACCOUNT", RefColumn: "AccountKey"},
		{Column: "SellerKey", RefTable: "ACCOUNT", RefColumn: "AccountKey"},
	}))

	transitem := db.MustCreateTable(relation.MustSchema("TRANSITEM", []relation.Column{
		{Name: "ItemKey", Kind: relation.KindInt},
		{Name: "TransKey", Kind: relation.KindInt},
		{Name: "ProductKey", Kind: relation.KindInt},
		{Name: "Quantity", Kind: relation.KindInt},
		{Name: "UnitPrice", Kind: relation.KindFloat},
	}, "ItemKey", []relation.ForeignKey{
		{Column: "TransKey", RefTable: "TRANS", RefColumn: "TransKey"},
		{Column: "ProductKey", RefTable: "PRODUCT", RefColumn: "ProductKey"},
	}))

	// ---- Populate dimensions ----
	for i, ev := range ebizHolidays {
		holiday.MustAppend(relation.Int(int64(i+1)), relation.String(ev))
	}
	// HolidayKey 0 means "no holiday"; add a sentinel row so strict FK
	// validation passes.
	holiday.MustAppend(relation.Int(0), relation.String("No Holiday"))

	months := []string{"January", "February", "March", "April", "May", "June",
		"July", "August", "September", "October", "November", "December"}
	dateKey := int64(1)
	for year := 2005; year <= 2006; year++ {
		for m := 0; m < 12; m++ {
			for d := 1; d <= 28; d += 7 { // one date per week is enough grain
				hk := int64(0)
				// Columbus Day: second week of October.
				if m == 9 && d == 8 {
					hk = 1
				}
				if m == 11 && d == 22 {
					hk = 2
				}
				quarter := fmt.Sprintf("Q%d %d", m/3+1, year)
				week := fmt.Sprintf("W%02d %d", m*4+d/7+1, year)
				date.MustAppend(
					relation.Int(dateKey),
					relation.String(fmt.Sprintf("%d %s %d", d, months[m], year)),
					relation.String(week),
					relation.String(fmt.Sprintf("%s %d", months[m], year)),
					relation.String(quarter),
					relation.Int(int64(year)),
					relation.Int(hk),
				)
				dateKey++
			}
		}
	}
	nDates := dateKey - 1

	for i, l := range ebizLocations {
		loc.MustAppend(relation.Int(int64(i+1)), relation.String(l[0]), relation.String(l[1]), relation.String(l[2]))
	}

	rng := stats.NewRNG(20070612) // SIGMOD'07 conference date
	// Every city gets at least one store (round-robin), extras random.
	nStores := 20
	for i := 1; i <= nStores; i++ {
		lk := int64((i-1)%len(ebizLocations) + 1)
		if i > len(ebizLocations) {
			lk = int64(rng.Intn(len(ebizLocations)) + 1)
		}
		store.MustAppend(relation.Int(int64(i)),
			relation.String(fmt.Sprintf("EBiz Outlet #%d", i)), relation.Int(lk))
	}

	nCustomers := 200
	for i := 1; i <= nCustomers; i++ {
		fn := ebizFirstNames[rng.Intn(len(ebizFirstNames))]
		ln := ebizLastNames[rng.Intn(len(ebizLastNames))]
		age := int64(18 + rng.Intn(60))
		// Incomes band to 500s so numeric facets read cleanly.
		income := float64(int((20000+rng.Float64()*130000)/500)) * 500
		lk := int64(rng.Intn(len(ebizLocations)) + 1)
		customer.MustAppend(relation.Int(int64(i)), relation.String(fn), relation.String(ln),
			relation.Int(age), relation.Float(income), relation.Int(lk))
	}
	// Every customer holds one account; some hold a second (seller) one.
	accountKey := int64(1)
	accountsOf := make(map[int64][]int64)
	for i := 1; i <= nCustomers; i++ {
		typ := "Personal"
		if rng.Float64() < 0.2 {
			typ = "Business"
		}
		account.MustAppend(relation.Int(accountKey), relation.Int(int64(i)), relation.String(typ))
		accountsOf[int64(i)] = append(accountsOf[int64(i)], accountKey)
		accountKey++
	}
	nAccounts := accountKey - 1

	// UNSPSC classes/families and product lines/groups from the product list.
	unspscKeys := map[string]int64{}
	lineKeys := map[string]int64{}
	groupKeys := map[string]int64{}
	for _, p := range ebizProducts {
		ck := p.class + "|" + p.family
		if _, ok := unspscKeys[ck]; !ok {
			k := int64(len(unspscKeys) + 1)
			unspscKeys[ck] = k
			unspsc.MustAppend(relation.Int(k), relation.String(p.class), relation.String(p.family))
		}
		if _, ok := lineKeys[p.line]; !ok {
			k := int64(len(lineKeys) + 1)
			lineKeys[p.line] = k
			pline.MustAppend(relation.Int(k), relation.String(p.line))
		}
		if _, ok := groupKeys[p.group]; !ok {
			k := int64(len(groupKeys) + 1)
			groupKeys[p.group] = k
			pgroup.MustAppend(relation.Int(k), relation.String(p.group), relation.Int(lineKeys[p.line]))
		}
	}
	for i, p := range ebizProducts {
		product.MustAppend(relation.Int(int64(i+1)), relation.String(p.name),
			relation.Float(p.price), relation.Int(unspscKeys[p.class+"|"+p.family]),
			relation.Int(groupKeys[p.group]))
	}

	// ---- Facts ----
	// Transactions skew: stores in California sell disproportionately many
	// LCD products, Columbus stores sell more televisions — giving the
	// facet layer real surprises to find.
	nTrans := factCount / 2
	for tk := int64(1); tk <= int64(nTrans); tk++ {
		dk := int64(rng.Intn(int(nDates)) + 1)
		sk := int64(rng.Intn(nStores) + 1)
		buyer := int64(rng.Intn(int(nAccounts)) + 1)
		seller := int64(rng.Intn(int(nAccounts)) + 1)
		trans.MustAppend(relation.Int(tk), relation.Int(dk), relation.Int(sk),
			relation.Int(buyer), relation.Int(seller))
	}
	itemKey := int64(1)
	for tk := int64(1); itemKey <= int64(factCount); tk = tk%int64(nTrans) + 1 {
		items := 1 + rng.Intn(3)
		storeLoc := loc.Value(int(store.Value(int(trans.Value(int(tk-1), "StoreKey").IntVal())-1, "LocKey").IntVal())-1, "City").Str()
		for j := 0; j < items && itemKey <= int64(factCount); j++ {
			pi := rng.Intn(len(ebizProducts))
			// Skews: LCD products over-sell in California cities,
			// televisions over-sell in Columbus.
			switch storeLoc {
			case "San Jose", "San Francisco", "Los Angeles":
				if rng.Float64() < 0.75 {
					pi = rng.Intn(5) // LCD projectors and panels
				}
			case "Columbus":
				if rng.Float64() < 0.75 {
					pi = 6 + rng.Intn(4) // televisions
				}
			}
			p := ebizProducts[pi]
			qty := int64(1 + rng.Intn(4))
			price := p.price * (0.9 + 0.2*rng.Float64())
			transitem.MustAppend(relation.Int(itemKey), relation.Int(tk),
				relation.Int(int64(pi+1)), relation.Int(qty), relation.Float(price))
			itemKey++
		}
	}

	g := schemagraph.New(db, "TRANSITEM")
	g.AddFactExtension("TRANS")
	mustAdd := func(d *schemagraph.Dimension) {
		if err := g.AddDimension(d); err != nil {
			panic(err)
		}
	}
	mustAdd(&schemagraph.Dimension{
		Name:   "Time",
		Tables: []string{"DATE", "HOLIDAY"},
		Hierarchies: []schemagraph.Hierarchy{{
			Name: "Calendar",
			Levels: []schemagraph.AttrRef{
				{Table: "DATE", Attr: "Year"},
				{Table: "DATE", Attr: "Quarter"},
				{Table: "DATE", Attr: "Month"},
				{Table: "DATE", Attr: "Week"},
				{Table: "DATE", Attr: "DateStr"},
			},
		}},
		GroupBy: []schemagraph.AttrRef{
			{Table: "DATE", Attr: "Year"},
			{Table: "DATE", Attr: "Quarter"},
			{Table: "DATE", Attr: "Month"},
			{Table: "HOLIDAY", Attr: "Event"},
		},
	})
	mustAdd(&schemagraph.Dimension{
		Name:   "Store",
		Tables: []string{"STORE", "LOC"},
		Hierarchies: []schemagraph.Hierarchy{{
			Name: "Geography",
			Levels: []schemagraph.AttrRef{
				{Table: "LOC", Attr: "Country"},
				{Table: "LOC", Attr: "State"},
				{Table: "LOC", Attr: "City"},
			},
		}},
		GroupBy: []schemagraph.AttrRef{
			{Table: "LOC", Attr: "City"},
			{Table: "LOC", Attr: "State"},
			{Table: "LOC", Attr: "Country"},
			{Table: "STORE", Attr: "StoreName"},
		},
	})
	mustAdd(&schemagraph.Dimension{
		Name:   "Customer",
		Tables: []string{"CUSTOMER", "ACCOUNT", "LOC"},
		Hierarchies: []schemagraph.Hierarchy{{
			Name: "Geography",
			Levels: []schemagraph.AttrRef{
				{Table: "LOC", Attr: "Country"},
				{Table: "LOC", Attr: "State"},
				{Table: "LOC", Attr: "City"},
			},
		}},
		GroupBy: []schemagraph.AttrRef{
			{Table: "CUSTOMER", Attr: "Age"},
			{Table: "CUSTOMER", Attr: "Income"},
			{Table: "LOC", Attr: "City"},
			{Table: "ACCOUNT", Attr: "AccountType"},
		},
	})
	mustAdd(&schemagraph.Dimension{
		Name:   "Product",
		Tables: []string{"PRODUCT", "UNSPSC", "PGROUP", "PLINE"},
		Hierarchies: []schemagraph.Hierarchy{
			{
				Name: "UNSPSC",
				Levels: []schemagraph.AttrRef{
					{Table: "UNSPSC", Attr: "FamilyTitle"},
					{Table: "UNSPSC", Attr: "ClassTitle"},
					{Table: "PRODUCT", Attr: "ProductName"},
				},
			},
			{
				Name: "ProductLine",
				Levels: []schemagraph.AttrRef{
					{Table: "PLINE", Attr: "LineName"},
					{Table: "PGROUP", Attr: "GroupName"},
					{Table: "PRODUCT", Attr: "ProductName"},
				},
			},
		},
		GroupBy: []schemagraph.AttrRef{
			{Table: "PGROUP", Attr: "GroupName"},
			{Table: "UNSPSC", Attr: "FamilyTitle"},
			{Table: "PRODUCT", Attr: "ProductName"},
			{Table: "PRODUCT", Attr: "ListPrice"},
		},
	})
	if err := g.Build(); err != nil {
		panic(err)
	}
	g.LabelEdge("TRANS", "BuyerKey", "Buyer", "Customer")
	g.LabelEdge("TRANS", "SellerKey", "Seller", "Customer")

	db.Freeze()
	ix := fulltext.NewIndex()
	ix.IndexDatabase(db)
	ix.Freeze()

	return &Warehouse{DB: db, Graph: g, Index: ix}
}
