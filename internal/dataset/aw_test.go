package dataset

import (
	"testing"

	"kdap/internal/fulltext"
	"kdap/internal/schemagraph"
)

// The §6.1 shape claims for AW_ONLINE: 5 dimensions, 10 tables, 3
// hierarchical dimensions, >60k facts, the databases together exceeding
// 20 full-text attribute domains each.
func TestAWOnlineShape(t *testing.T) {
	wh := AWOnline()
	st := wh.DB.Stats()
	if st.Tables != 10 {
		t.Errorf("tables = %d, want 10", st.Tables)
	}
	if got := len(wh.Graph.Dimensions()); got != 5 {
		t.Errorf("dimensions = %d, want 5", got)
	}
	hier := 0
	for _, d := range wh.Graph.Dimensions() {
		if len(d.Hierarchies) > 0 {
			hier++
		}
	}
	if hier != 3 {
		t.Errorf("hierarchical dimensions = %d, want 3", hier)
	}
	if n := wh.DB.Table("FactInternetSales").Len(); n != AWOnlineFactCount || n < 60000 {
		t.Errorf("facts = %d", n)
	}
	if st.FullTextColumns <= 20 {
		t.Errorf("full-text attribute domains = %d, want > 20", st.FullTextColumns)
	}
}

func TestAWResellerShape(t *testing.T) {
	wh := AWReseller()
	st := wh.DB.Stats()
	if st.Tables != 13 {
		t.Errorf("tables = %d, want 13", st.Tables)
	}
	if got := len(wh.Graph.Dimensions()); got != 7 {
		t.Errorf("dimensions = %d, want 7", got)
	}
	hier := 0
	for _, d := range wh.Graph.Dimensions() {
		if len(d.Hierarchies) > 0 {
			hier++
		}
	}
	if hier != 4 {
		t.Errorf("hierarchical dimensions = %d, want 4", hier)
	}
	if n := wh.DB.Table("FactResellerSales").Len(); n != AWResellerFactCount || n < 60000 {
		t.Errorf("facts = %d", n)
	}
	if st.FullTextColumns <= 20 {
		t.Errorf("full-text attribute domains = %d, want > 20", st.FullTextColumns)
	}
}

func TestAWReferentialIntegrity(t *testing.T) {
	if err := AWOnline().DB.Validate(true); err != nil {
		t.Errorf("AW_ONLINE: %v", err)
	}
	if err := AWReseller().DB.Validate(true); err != nil {
		t.Errorf("AW_RESELLER: %v", err)
	}
}

// Every keyword family the Table 3 workload depends on must match.
func TestAWOnlineWorkloadVocabulary(t *testing.T) {
	ix := AWOnline().Index
	queries := []string{
		"Overstock", "Tire", "Sport", "October", "fernando35", "Bolts",
		"Europe", "Australia", "Bachelors", "Blade", "Washer", "Lock",
		"California", "Brakes", "Chains", "Road", "Bikes", "Chainring",
		"Hub", "Silver", "2001", "January", "US", "Caps", "Gloves",
		"Jerseys", "Pedal", "Sydney", "Helmet", "Discount", "Promotion",
		"December", "Socks", "Cycling", "Alexandria", "Frame", "Ithaca",
		"Accessories", "Clothing", "Wales", "Professional", "Jose",
		"Metal", "Plate", "Washington", "Tubes", "Germany", "Dollar",
		"2000", "September", "Components", "Torrance", "Denver", "Yellow",
		"handcrafted", "bumps", "Fork", "America", "HeadSet", "Allpurpose",
		"road", "November", "Mountain", "Seattle", "Saddles", "1245550139",
		"Francisco", "Palo", "Alto", "Santa", "Cruz", "Corrinne", "Court",
		"Sunday", "Pacific", "2003", "Sealed", "cartridge", "Horquilla",
		"Wheel", "Headlights", "Weatherproof", "7800",
	}
	for _, q := range queries {
		if hits := ix.Search(q, fulltext.Options{Prefix: true}); len(hits) == 0 {
			t.Errorf("workload keyword %q matches nothing in AW_ONLINE", q)
		}
	}
}

func TestAWResellerVocabulary(t *testing.T) {
	ix := AWReseller().Index
	for _, q := range []string{
		"Warehouse", "Specialty", "Valley", "Sales", "Representative",
		"Engineer", "British", "Columbia", "Mountain", "France",
	} {
		if hits := ix.Search(q, fulltext.Options{Prefix: true}); len(hits) == 0 {
			t.Errorf("keyword %q matches nothing in AW_RESELLER", q)
		}
	}
}

// Table 1's three interpretations need: California as state AND inside an
// address line; "Mountain Bikes" as subcategory; Mountain products
// (Fender Set - Mountain, Mountain Pump); Bikes as category.
func TestAWOnlineCaliforniaMountainBikesAmbiguity(t *testing.T) {
	ix := AWOnline().Index
	calHits := ix.Search("California", fulltext.Options{})
	domains := map[string]bool{}
	for _, h := range calHits {
		domains[h.Doc.Table+"."+h.Doc.Attr] = true
	}
	if !domains["DimGeography.StateProvinceName"] || !domains["DimCustomer.AddressLine1"] {
		t.Errorf("California domains = %v", domains)
	}
	mb := ix.SearchPhrase("Mountain Bikes", fulltext.Options{})
	foundSubcat := false
	for _, h := range mb {
		if h.Doc.Table == "DimProductSubcategory" {
			foundSubcat = true
		}
	}
	if !foundSubcat {
		t.Error("phrase 'Mountain Bikes' misses the subcategory")
	}
	mtn := ix.Search("Mountain", fulltext.Options{})
	prodHits := 0
	for _, h := range mtn {
		if h.Doc.Table == "DimProduct" && h.Doc.Attr == "EnglishProductName" {
			prodHits++
		}
	}
	if prodHits < 2 {
		t.Errorf("Mountain product-name hits = %d, want several", prodHits)
	}
}

// The Figure 5/6 numeric attributes must be present, numeric, and listed
// as group-by candidates.
func TestAWNumericGroupByCandidates(t *testing.T) {
	check := func(wh *Warehouse, dim string, attrs ...string) {
		t.Helper()
		d := wh.Graph.Dimension(dim)
		if d == nil {
			t.Fatalf("missing dimension %s", dim)
		}
		for _, a := range attrs {
			found := false
			for _, gb := range d.GroupBy {
				if gb.Attr == a {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: %s not a group-by candidate", dim, a)
			}
		}
	}
	check(AWOnline(), "Customer", "YearlyIncome")
	check(AWOnline(), "Product", "DealerPrice")
	check(AWReseller(), "Reseller", "AnnualSales", "AnnualRevenue", "NumberOfEmployees")
}

// Rollup paths required by Figures 5/6: StateProvince→Country and
// Subcategory→Category.
func TestAWRollupLevels(t *testing.T) {
	g := AWOnline().Graph
	parent, _, ok := g.HierarchyParent(schemagraph.AttrRef{Table: "DimGeography", Attr: "StateProvinceName"})
	if !ok || parent.Attr != "CountryRegionName" {
		t.Errorf("state parent = %v %v", parent, ok)
	}
	parent, _, ok = g.HierarchyParent(schemagraph.AttrRef{Table: "DimProductSubcategory", Attr: "SubcategoryName"})
	if !ok || parent.Attr != "CategoryName" {
		t.Errorf("subcategory parent = %v %v", parent, ok)
	}
}

// The reseller schema's richer join-path ambiguity: a city reaches the
// fact table through the reseller chain and through territory chains.
func TestAWResellerGeographyPaths(t *testing.T) {
	g := AWReseller().Graph
	paths := g.JoinPaths("DimGeography")
	if len(paths) < 2 {
		for _, p := range paths {
			t.Logf("  %v", p)
		}
		t.Fatalf("geography paths = %d, want ≥ 2", len(paths))
	}
	roles := map[string]bool{}
	for _, p := range paths {
		roles[p.Role] = true
	}
	if !roles["Reseller"] {
		t.Errorf("roles = %v, want Reseller among them", roles)
	}
}

func TestAWDeterministic(t *testing.T) {
	// The sync.Once caching returns the same instance; determinism of the
	// underlying generator is covered by re-running the builders.
	a := buildAWOnline()
	b := AWOnline()
	fa, fb := a.DB.Table("FactInternetSales"), b.DB.Table("FactInternetSales")
	if fa.Len() != fb.Len() {
		t.Fatal("fact counts differ across builds")
	}
	for i := 0; i < fa.Len(); i += 997 {
		ra, rb := fa.Row(i), fb.Row(i)
		for c := range ra {
			if !ra[c].Equal(rb[c]) {
				t.Fatalf("row %d col %d differs", i, c)
			}
		}
	}
}
