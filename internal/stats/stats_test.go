package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, "Mean", Mean(xs), 5, 1e-12)
	approx(t, "StdDev", StdDev(xs), 2, 1e-12)
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev(nil)) {
		t.Error("empty slice should give NaN")
	}
}

func TestSumMinMax(t *testing.T) {
	approx(t, "Sum", Sum([]float64{1, 2, 3.5}), 6.5, 1e-12)
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %g,%g", min, max)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax(nil) should panic")
		}
	}()
	MinMax(nil)
}

func TestPearsonKnownValues(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	approx(t, "perfect positive", Pearson(x, []float64{2, 4, 6, 8, 10}), 1, 1e-12)
	approx(t, "perfect negative", Pearson(x, []float64{10, 8, 6, 4, 2}), -1, 1e-12)
	approx(t, "self", Pearson(x, x), 1, 1e-12)
	// A hand-computed case: x = 1..5, y = {1,2,2,4,10}:
	// sxy=20, sxx=10, syy=52.8 → corr = 20/sqrt(528).
	approx(t, "hand case", Pearson(x, []float64{1, 2, 2, 4, 10}), 20/math.Sqrt(528), 1e-12)
}

func TestPearsonDegenerate(t *testing.T) {
	if Pearson([]float64{1}, []float64{2}) != 0 {
		t.Error("single point should give 0")
	}
	if Pearson(nil, nil) != 0 {
		t.Error("empty should give 0")
	}
	if Pearson([]float64{3, 3, 3}, []float64{1, 2, 3}) != 0 {
		t.Error("constant series should give 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	Pearson([]float64{1, 2}, []float64{1})
}

// Properties of Pearson: symmetry, range, invariance under positive affine
// transforms, and sign flip under negation.
func TestPearsonProperties(t *testing.T) {
	gen := func(seed uint64, n int) ([]float64, []float64) {
		r := NewRNG(seed)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()*100 - 50
			y[i] = r.Float64()*100 - 50
		}
		return x, y
	}
	f := func(seed uint64) bool {
		x, y := gen(seed, 16)
		r1 := Pearson(x, y)
		if r1 < -1 || r1 > 1 {
			return false
		}
		if math.Abs(r1-Pearson(y, x)) > 1e-12 {
			return false
		}
		// positive affine invariance: corr(a*x+b, y) == corr(x, y), a>0
		ax := make([]float64, len(x))
		for i := range x {
			ax[i] = 3.5*x[i] + 7
		}
		if math.Abs(Pearson(ax, y)-r1) > 1e-9 {
			return false
		}
		// negation flips sign
		nx := make([]float64, len(x))
		for i := range x {
			nx[i] = -x[i]
		}
		return math.Abs(Pearson(nx, y)+r1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAbsErrPct(t *testing.T) {
	approx(t, "10% err", AbsErrPct(1.1, 1.0), 10, 1e-9)
	approx(t, "exact", AbsErrPct(-0.5, -0.5), 0, 0)
	approx(t, "zero/zero", AbsErrPct(0, 0), 0, 0)
	approx(t, "nonzero/zero", AbsErrPct(0.3, 0), 100, 0)
	approx(t, "negative want", AbsErrPct(-0.9, -1.0), 10, 1e-9)
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Error("different seeds produce suspiciously similar streams")
	}
}

func TestRNGRangesAndPanics(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Intn(0) should panic")
			}
		}()
		r.Intn(0)
	}()
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(99)
	const n, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for b, c := range counts {
		if c < n/buckets*8/10 || c > n/buckets*12/10 {
			t.Errorf("bucket %d count %d far from uniform %d", b, c, n/buckets)
		}
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	approx(t, "normal mean", Mean(xs), 0, 0.02)
	approx(t, "normal stddev", StdDev(xs), 1, 0.02)
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(1)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGPick(t *testing.T) {
	r := NewRNG(11)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.Pick([]float64{1, 2, 7})]++
	}
	if !(counts[0] < counts[1] && counts[1] < counts[2]) {
		t.Errorf("Pick ignores weights: %v", counts)
	}
	approx(t, "heavy weight share", float64(counts[2])/30000, 0.7, 0.03)
	for name, w := range map[string][]float64{"negative": {1, -1}, "zero": {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pick with %s weights should panic", name)
				}
			}()
			r.Pick(w)
		}()
	}
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v", got)
		}
	}
	// Ties share the average rank.
	got = Ranks([]float64{5, 1, 5, 2})
	want = []float64{3.5, 1, 3.5, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tied Ranks = %v", got)
		}
	}
	if len(Ranks(nil)) != 0 {
		t.Error("empty ranks")
	}
}

func TestSpearman(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	// Any monotone transform correlates perfectly under Spearman.
	y := []float64{1, 8, 27, 1000, 100000}
	approx(t, "monotone", Spearman(x, y), 1, 1e-12)
	approx(t, "reversed", Spearman(x, []float64{5, 4, 3, 2, 1}), -1, 1e-12)
	// Outlier robustness: one huge value barely moves Spearman but drags
	// Pearson.
	xo := []float64{1, 2, 3, 4, 100000}
	yo := []float64{2, 1, 4, 3, 90000}
	if p, s := Pearson(xo, yo), Spearman(xo, yo); s >= p {
		// Pearson is ~1 here (outlier dominates); Spearman reflects the
		// scrambled small ranks.
		t.Errorf("expected Spearman (%g) below outlier-dominated Pearson (%g)", s, p)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	Spearman([]float64{1}, []float64{1, 2})
}
