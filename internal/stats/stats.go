// Package stats provides the small statistical toolbox KDAP's ranking
// layer needs: Pearson correlation between aggregate series, summary
// statistics, and a seeded deterministic random source for the simulated
// annealer.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or NaN for an
// empty slice.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	mu := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Pearson returns the Pearson correlation coefficient between two series
// of equal length:
//
//	corr(X, Y) = E[(X-μx)(Y-μy)] / (σx σy)
//
// This is Equation 1's core quantity in the paper (the group-by attribute
// score is its negation for surprise mode). Degenerate inputs — fewer than
// two points, or a zero-variance series — yield 0, which the ranking layer
// treats as "no evidence of (dis)similarity". Pearson panics if the series
// lengths differ, because that always indicates a partition-alignment bug
// upstream.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Pearson on series of different length")
	}
	n := len(x)
	if n < 2 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Clamp floating-point drift so callers can rely on [-1, 1].
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r
}

// Spearman returns the Spearman rank correlation between two series: the
// Pearson correlation of their rank vectors, with ties assigned average
// ranks. It is an outlier-robust alternative to Pearson for Equation 1's
// partition scoring (one huge category cannot dominate the comparison).
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Spearman on series of different length")
	}
	return Pearson(Ranks(x), Ranks(y))
}

// Ranks converts a series to average ranks (1-based; ties share the mean
// of the ranks they span).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// MinMax returns the smallest and largest element of xs. It panics on an
// empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// AbsErrPct returns the relative error |got-want| / |want| as a
// percentage. When want is 0, it returns 0 if got is also 0 and 100
// otherwise; the experiment harness uses this to compare correlation
// values against ground truth.
func AbsErrPct(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 100
	}
	return math.Abs(got-want) / math.Abs(want) * 100
}
