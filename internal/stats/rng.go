package stats

import "math"

// RNG is a small deterministic pseudo-random generator (SplitMix64). The
// simulated annealer and the synthetic dataset generators use it so that
// every run of the system — and every test — is exactly reproducible from
// a seed, with no dependence on global math/rand state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a pseudo-random number from the standard normal
// distribution, using the Marsaglia polar method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Pick returns a pseudo-random element index weighted by weights; weights
// must be non-negative with a positive sum.
func (r *RNG) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: RNG.Pick with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("stats: RNG.Pick with zero total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
