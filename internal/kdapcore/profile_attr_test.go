package kdapcore

import (
	"context"
	"sync"
	"testing"
	"time"

	"kdap/internal/telemetry"
	"kdap/internal/telemetry/profile"
)

// Batched followers used to be observability holes: a request whose
// answer came from a batch peer's work finished with an empty span tree
// and no profile evidence of why. This pins the fix — shared work shows
// up as a batch_shared stage and the wide event carries the batch
// membership (leader's batch ID, size, role) instead of omitting it.
func TestBatchedFollowerAttribution(t *testing.T) {
	e := ebizEngine()
	e.SetBatching(50*time.Millisecond, 8)
	nets, err := e.Differentiate("Columbus LCD")
	if err != nil || len(nets) == 0 {
		t.Fatalf("differentiate: %v (%d nets)", err, len(nets))
	}
	opts := DefaultExploreOptions()

	type result struct {
		ev     *profile.Event
		stages map[string]time.Duration
		err    error
	}
	const n = 8
	res := make([]result, n)
	var wg sync.WaitGroup
	for i := range res {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Mirror the server's per-request setup: a trace and a wide
			// event on the context.
			p := profile.New("explore", "")
			tr := telemetry.NewTrace("explore")
			ctx := profile.NewContext(tr.Context(context.Background()), p)
			_, _, err := e.ExploreBatchedCtx(ctx, nets[0], opts)
			tr.Finish()
			p.SetStages(tr.Stages())
			p.Finish(0, profile.DispositionOK, nil)
			res[i] = result{p.Snapshot(), tr.Stages(), err}
		}(i)
	}
	wg.Wait()

	followers, sharers := 0, 0
	for i, r := range res {
		if r.err != nil {
			t.Fatalf("request %d: %v", i, r.err)
		}
		if r.ev.BatchID == 0 {
			t.Errorf("request %d joined no batch: %+v", i, r.ev)
		}
		if r.ev.BatchSize < 2 {
			t.Errorf("request %d: batch size %d, want >= 2", i, r.ev.BatchSize)
		}
		switch r.ev.BatchRole {
		case "follower":
			followers++
		case "leader":
		default:
			t.Errorf("request %d: batch role %q, want leader or follower", i, r.ev.BatchRole)
		}
		// Sharing takes two forms, and which one a given request gets is
		// a race it may legitimately lose: adopting a peer's whole
		// answer (role flips to follower) or adopting individual scan
		// memos (sharedScans counts them). Either way the shared work
		// must be attributed as a batch_shared stage, not dropped.
		if r.ev.BatchRole == "follower" || r.ev.SharedScans > 0 {
			sharers++
			if _, ok := r.stages["batch_shared"]; !ok {
				t.Errorf("sharer %d has no batch_shared stage: %+v %v", i, r.ev, r.stages)
			}
		}
	}
	// An 8-way identical storm through one batch must share: at least
	// one request adopts a peer's answer or scan.
	if sharers == 0 {
		t.Fatalf("no sharing in an 8-way identical storm: %+v", e.BatchStats())
	}
	if followers == n {
		t.Fatalf("every request claims to be a follower; someone must lead")
	}
}

// A solo (unbatched) engine must leave batch fields zero — attribution,
// not noise.
func TestUnbatchedProfileHasNoBatchFields(t *testing.T) {
	e := ebizEngine()
	nets, err := e.Differentiate("Columbus LCD")
	if err != nil || len(nets) == 0 {
		t.Fatalf("differentiate: %v (%d nets)", err, len(nets))
	}
	p := profile.New("explore", "")
	ctx := profile.NewContext(context.Background(), p)
	if _, _, err := e.ExploreBatchedCtx(ctx, nets[0], DefaultExploreOptions()); err != nil {
		t.Fatal(err)
	}
	p.Finish(0, profile.DispositionOK, nil)
	ev := p.Snapshot()
	if ev.BatchID != 0 || ev.BatchRole != "" || ev.SharedScans != 0 {
		t.Errorf("unbatched explore carries batch evidence: %+v", ev)
	}
	if ev.SerialScans+ev.ParallelScans == 0 {
		t.Errorf("unbatched explore recorded no kernel scans: %+v", ev)
	}
}
