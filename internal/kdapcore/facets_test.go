package kdapcore

import (
	"math"
	"strings"
	"testing"

	"kdap/internal/relation"
	"kdap/internal/schemagraph"
)

// exploreColumbusLCD picks the Store-path interpretation of the running
// example and explores it.
func exploreColumbusLCD(t *testing.T, mode InterestMode) (*Engine, *StarNet, *Facets) {
	t.Helper()
	e := ebizEngine()
	nets, err := e.Differentiate("Columbus LCD")
	if err != nil {
		t.Fatal(err)
	}
	var sn *StarNet
	for _, n := range nets {
		sig := n.DomainSignature()
		if strings.Contains(sig, "LOC.City[Store]") && strings.Contains(sig, "PGROUP.GroupName[Product]") {
			sn = n
			break
		}
	}
	if sn == nil {
		t.Fatal("no Store-city × product-group interpretation")
	}
	opts := DefaultExploreOptions()
	opts.Mode = mode
	f, err := e.Explore(sn, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e, sn, f
}

func TestExploreBasicShape(t *testing.T) {
	_, sn, f := exploreColumbusLCD(t, Surprise)
	if f.Net != sn {
		t.Error("facets not linked to net")
	}
	if f.SubspaceSize <= 0 || f.TotalAggregate <= 0 {
		t.Fatalf("subspace size %d aggregate %g", f.SubspaceSize, f.TotalAggregate)
	}
	if len(f.Dimensions) == 0 {
		t.Fatal("no dimension facets")
	}
	// Static dimension order is alphabetical (§5.1).
	for i := 1; i < len(f.Dimensions); i++ {
		if f.Dimensions[i].Dimension < f.Dimensions[i-1].Dimension {
			t.Error("dimensions not in static alphabetical order")
		}
	}
	// Facets must include dimensions NOT in the query (§1: time, customer
	// attributes appear although only store city and product were typed).
	names := map[string]bool{}
	for _, d := range f.Dimensions {
		names[d.Dimension] = true
	}
	if !names["Time"] || !names["Customer"] {
		t.Errorf("non-hitted dimensions missing from facets: %v", names)
	}
}

func TestExplorePromotesHitAttributes(t *testing.T) {
	_, _, f := exploreColumbusLCD(t, Surprise)
	var promoted *AttrFacet
	for _, d := range f.Dimensions {
		if d.Dimension != "Product" {
			continue
		}
		if !d.Hitted {
			t.Error("Product dimension should be hitted")
		}
		for _, a := range d.Attributes {
			if a.Promoted {
				promoted = a
			}
		}
	}
	if promoted == nil {
		t.Fatal("no promoted attribute in the Product dimension")
	}
	if promoted.Attr != (schemagraph.AttrRef{Table: "PGROUP", Attr: "GroupName"}) {
		t.Errorf("promoted attr = %v", promoted.Attr)
	}
	if !math.IsInf(promoted.Score, 1) {
		t.Error("promoted attribute must rank first (infinite score)")
	}
	// Its instances are the hit values ("...LCD..." groups).
	if len(promoted.Instances) == 0 {
		t.Fatal("promoted facet has no instances")
	}
	for _, inst := range promoted.Instances {
		if !strings.Contains(inst.Label, "LCD") {
			t.Errorf("promoted instance %q does not match the hit", inst.Label)
		}
		if inst.Aggregate < 0 {
			t.Errorf("negative aggregate %g", inst.Aggregate)
		}
	}
}

func TestExploreRespectsTopK(t *testing.T) {
	e, sn, _ := exploreColumbusLCD(t, Surprise)
	opts := DefaultExploreOptions()
	opts.TopKAttrs = 1
	opts.TopKInstances = 2
	f, err := e.Explore(sn, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Dimensions {
		nonPromoted := 0
		for _, a := range d.Attributes {
			if !a.Promoted {
				nonPromoted++
			}
			if len(a.Instances) > 2 {
				t.Errorf("%s.%s has %d instances, cap 2", d.Dimension, a.Attr.Attr, len(a.Instances))
			}
		}
		if nonPromoted > 1 {
			t.Errorf("dimension %s has %d ranked attrs, cap 1", d.Dimension, nonPromoted)
		}
	}
}

func TestExploreNumericFacet(t *testing.T) {
	_, _, f := exploreColumbusLCD(t, Surprise)
	var numeric *AttrFacet
	for _, d := range f.Dimensions {
		for _, a := range d.Attributes {
			if a.Numeric {
				numeric = a
			}
		}
	}
	if numeric == nil {
		t.Fatal("no numeric facet (Customer Age/Income or Product ListPrice expected)")
	}
	if len(numeric.Instances) < 2 {
		t.Fatalf("numeric facet has %d ranges", len(numeric.Instances))
	}
	// Ranges are contiguous, ordered, and labeled.
	for i, inst := range numeric.Instances {
		if inst.Lo >= inst.Hi {
			t.Errorf("range %d: lo %g >= hi %g", i, inst.Lo, inst.Hi)
		}
		if i > 0 && numeric.Instances[i-1].Hi != inst.Lo {
			t.Errorf("ranges not contiguous at %d", i)
		}
		if inst.Label == "" || !inst.Value.IsNull() {
			t.Errorf("numeric instance rendering: %+v", inst)
		}
	}
}

func TestExploreInstanceScoresEquation2(t *testing.T) {
	// Eq. 2 scores are share differences: each in [-1, 1], and the sum of
	// shares over all DS' categories equals 1, so the facet's displayed
	// instances have bounded scores.
	_, _, f := exploreColumbusLCD(t, Surprise)
	for _, d := range f.Dimensions {
		for _, a := range d.Attributes {
			for _, inst := range a.Instances {
				if inst.Score < -1-1e-9 || inst.Score > 1+1e-9 {
					t.Errorf("%s/%s %q score %g out of range", d.Dimension, a.Attr.Attr, inst.Label, inst.Score)
				}
			}
		}
	}
}

func TestExploreSurpriseInstancesRankedByDeviation(t *testing.T) {
	_, _, f := exploreColumbusLCD(t, Surprise)
	for _, d := range f.Dimensions {
		for _, a := range d.Attributes {
			if a.Promoted || a.Numeric {
				continue
			}
			for i := 1; i < len(a.Instances); i++ {
				if math.Abs(a.Instances[i].Score) > math.Abs(a.Instances[i-1].Score)+1e-12 {
					t.Errorf("%s.%s instances not ranked by |deviation| at %d", d.Dimension, a.Attr.Attr, i)
				}
			}
		}
	}
}

func TestExploreBellwetherMode(t *testing.T) {
	_, _, fs := exploreColumbusLCD(t, Surprise)
	_, _, fb := exploreColumbusLCD(t, Bellwether)
	// Surprise scores -min_r corr_r and bellwether max_r corr_r over the
	// same roll-ups, so for any attribute scored in both modes the sum
	// of its two scores is max-min ≥ 0 — unless the partition was
	// uninformative, in which case both modes sink it identically.
	pick := func(f *Facets) map[string]float64 {
		out := map[string]float64{}
		for _, d := range f.Dimensions {
			for _, a := range d.Attributes {
				if !a.Promoted {
					out[a.Attr.String()] = a.Score
				}
			}
		}
		return out
	}
	ss, bb := pick(fs), pick(fb)
	checked := 0
	for k, v := range ss {
		bv, ok := bb[k]
		if !ok {
			continue
		}
		checked++
		if v == uninformativeScore || bv == uninformativeScore {
			if v != bv {
				t.Errorf("%s: uninformative in one mode only (%g vs %g)", k, v, bv)
			}
			continue
		}
		if v+bv < -1e-9 {
			t.Errorf("%s: surprise %g + bellwether %g < 0", k, v, bv)
		}
	}
	if checked == 0 {
		t.Error("no attribute scored in both modes")
	}
	// Bellwether instances rank by contribution, descending.
	for _, d := range fb.Dimensions {
		for _, a := range d.Attributes {
			if a.Promoted || a.Numeric {
				continue
			}
			for i := 1; i < len(a.Instances); i++ {
				if a.Instances[i].Aggregate > a.Instances[i-1].Aggregate+1e-9 {
					t.Errorf("bellwether instances not ranked by aggregate at %s.%s", d.Dimension, a.Attr.Attr)
				}
			}
		}
	}
}

func TestExploreErrors(t *testing.T) {
	e := ebizEngine()
	nets, _ := e.Differentiate("Columbus LCD")
	sn := nets[0]
	bad := DefaultExploreOptions()
	bad.TopKAttrs = 0
	if _, err := e.Explore(sn, bad); err == nil {
		t.Error("zero TopKAttrs accepted")
	}
	// An impossible intersection produces an empty subspace error.
	empty := &StarNet{Query: "x", Groups: []BoundGroup{{
		Group: &HitGroup{Table: "LOC", Attr: "City",
			Hits: []Hit{{Table: "LOC", Attr: "City", Value: relation.String("Atlantis"), Score: 1}}},
		Path: mustPath(t, e, "LOC", "Store"),
	}}}
	if _, err := e.Explore(empty, DefaultExploreOptions()); err == nil {
		t.Error("empty subspace accepted")
	}
}

func mustPath(t *testing.T, e *Engine, table, role string) schemagraph.JoinPath {
	t.Helper()
	p, ok := e.Graph().PathFromFact(table, role)
	if !ok {
		t.Fatalf("no path for %s[%s]", table, role)
	}
	return p
}

func TestDrillNarrowsSubspace(t *testing.T) {
	e, sn, f := exploreColumbusLCD(t, Surprise)
	// Drill into the first categorical non-promoted instance we find.
	var attr schemagraph.AttrRef
	var role string
	var val relation.Value
	found := false
	for _, d := range f.Dimensions {
		for _, a := range d.Attributes {
			if a.Numeric || len(a.Instances) == 0 {
				continue
			}
			attr, role, val = a.Attr, a.Role, a.Instances[0].Value
			found = true
		}
	}
	if !found {
		t.Fatal("nothing to drill into")
	}
	drilled, err := e.Drill(sn, attr, role, val)
	if err != nil {
		t.Fatal(err)
	}
	before := len(e.SubspaceRows(sn))
	after := len(e.SubspaceRows(drilled))
	if after == 0 || after > before {
		t.Errorf("drill produced %d rows from %d", after, before)
	}
	if len(sn.Groups) == len(drilled.Groups) {
		t.Error("drill did not add a constraint")
	}
	// Drilling must not mutate the original net.
	if got := len(e.SubspaceRows(sn)); got != before {
		t.Error("original net changed by drill")
	}
}

func TestDrillUnreachableAttr(t *testing.T) {
	e := ebizEngine()
	nets, _ := e.Differentiate("Projectors")
	_, err := e.Drill(nets[0], schemagraph.AttrRef{Table: "GHOST", Attr: "X"}, "Store", relation.String("v"))
	if err == nil {
		t.Error("unreachable attribute accepted")
	}
}

func TestInterestModeString(t *testing.T) {
	if Surprise.String() != "surprise" || Bellwether.String() != "bellwether" {
		t.Error("mode names")
	}
	if InterestMode(9).String() != "unknown" {
		t.Error("unknown mode name")
	}
}

// Roll-up correctness: the background space must be a superset of DS'.
func TestRollupSuperset(t *testing.T) {
	e, sn, _ := exploreColumbusLCD(t, Surprise)
	rows := e.SubspaceRows(sn)
	inRows := map[int]bool{}
	for _, r := range rows {
		inRows[r] = true
	}
	rollups := e.buildRollups(sn)
	if len(rollups) == 0 {
		t.Fatal("no rollups for a hitted net")
	}
	for _, ru := range rollups {
		if len(ru.rows) < len(rows) {
			t.Errorf("rollup %s smaller than DS': %d < %d", ru.dim, len(ru.rows), len(rows))
		}
		inRU := map[int]bool{}
		for _, r := range ru.rows {
			inRU[r] = true
		}
		for r := range inRows {
			if !inRU[r] {
				t.Fatalf("rollup %s is not a superset of DS'", ru.dim)
			}
		}
		if ru.agg <= 0 {
			t.Errorf("rollup %s aggregate %g", ru.dim, ru.agg)
		}
	}
}

// The Columbus hit is at the City level, whose hierarchy parent is State:
// the roll-up along the Store dimension must widen Columbus to all Ohio
// stores; the LCD hit at GroupName level widens to its LineName parent.
func TestRollupLevels(t *testing.T) {
	e, sn, _ := exploreColumbusLCD(t, Surprise)
	rollups := e.buildRollups(sn)
	dims := map[string]bool{}
	for _, ru := range rollups {
		dims[ru.dim] = true
	}
	if !dims["Store"] || !dims["Product"] {
		t.Errorf("rollup dims = %v, want Store and Product", dims)
	}
}
