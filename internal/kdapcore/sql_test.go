package kdapcore

import (
	"strings"
	"testing"

	"kdap/internal/olap"
)

func findNet(t *testing.T, e *Engine, query string, want ...string) *StarNet {
	t.Helper()
	nets, err := e.Differentiate(query)
	if err != nil {
		t.Fatal(err)
	}
	for _, sn := range nets {
		sig := sn.DomainSignature()
		ok := true
		for _, w := range want {
			if !strings.Contains(sig, w) {
				ok = false
			}
		}
		if ok {
			return sn
		}
	}
	t.Fatalf("no net for %q containing %v", query, want)
	return nil
}

func TestSQLSimpleNet(t *testing.T) {
	e := ebizEngine()
	sn := findNet(t, e, "Projectors", "UNSPSC.ClassTitle")
	sql := sn.SQL(e.Measure(), e.Agg(), "TRANSITEM")
	t.Log("\n" + sql)
	for _, want := range []string{
		`SELECT SUM("revenue")`,
		`FROM "TRANSITEM"`,
		`JOIN "PRODUCT" AS "PRODUCT" ON "TRANSITEM"."ProductKey" = "PRODUCT"."ProductKey"`,
		`JOIN "UNSPSC" AS "UNSPSC" ON "PRODUCT"."UnspscKey" = "UNSPSC"."UnspscKey"`,
		`WHERE "UNSPSC"."ClassTitle" IN ('Projectors')`,
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q", want)
		}
	}
	if !strings.HasSuffix(sql, ";") {
		t.Error("missing terminator")
	}
}

// The Seattle/Portland case: buyer city and store city share the TRANS
// join but need distinct LOC aliases.
func TestSQLAliasing(t *testing.T) {
	e := ebizEngine()
	nets, err := e.Differentiate("Seattle Portland")
	if err != nil {
		t.Fatal(err)
	}
	var sn *StarNet
	for _, n := range nets {
		roles := map[string]bool{}
		for _, bg := range n.Groups {
			roles[bg.Path.Role] = true
		}
		if roles["Buyer"] && roles["Store"] {
			sn = n
			break
		}
	}
	if sn == nil {
		t.Fatal("no buyer+store net")
	}
	sql := sn.SQL(e.Measure(), e.Agg(), "TRANSITEM")
	t.Log("\n" + sql)
	// TRANS joined exactly once (shared prefix).
	if n := strings.Count(sql, `JOIN "TRANS" AS`); n != 1 {
		t.Errorf("TRANS joined %d times, want 1", n)
	}
	// LOC joined twice under different aliases.
	if n := strings.Count(sql, `JOIN "LOC" AS`); n != 2 {
		t.Errorf("LOC joined %d times, want 2", n)
	}
	if !strings.Contains(sql, `"LOC"`) || !strings.Contains(sql, `"LOC_`) {
		t.Error("role-suffixed LOC alias missing")
	}
	// Two city predicates against different aliases.
	if strings.Count(sql, `."City" IN (`) != 2 {
		t.Error("expected two city predicates")
	}
}

func TestSQLWithFilters(t *testing.T) {
	e := ebizEngine()
	nets, err := e.Differentiate("Projectors UnitPrice>1000 Income<=90000")
	if err != nil {
		t.Fatal(err)
	}
	sql := nets[0].SQL(e.Measure(), e.Agg(), "TRANSITEM")
	t.Log("\n" + sql)
	if !strings.Contains(sql, `"TRANSITEM"."UnitPrice" > 1000`) {
		t.Error("fact filter missing")
	}
	if !strings.Contains(sql, `."Income" <= 90000`) {
		t.Error("dimension filter missing")
	}
	// The dimension filter's join chain must be rendered.
	if !strings.Contains(sql, `JOIN "CUSTOMER" AS`) {
		t.Error("filter join chain missing")
	}
}

func TestSQLQuoting(t *testing.T) {
	if quoteIdent(`we"ird`) != `"we""ird"` {
		t.Error("ident quoting")
	}
	if quoteValue("O'Brien") != "'O''Brien'" {
		t.Error("value quoting")
	}
	if measureSQL(olap.Measure{}) != "*" {
		t.Error("unnamed measure")
	}
}
