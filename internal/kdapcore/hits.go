// Package kdapcore implements Keyword-Driven Analytical Processing — the
// paper's primary contribution. The engine operates in the two phases of
// §3: differentiate (keyword query → ranked candidate star nets, §4) and
// explore (chosen sub-dataspace → dynamic facets, §5).
package kdapcore

import (
	"context"
	"sort"
	"strings"

	"kdap/internal/fulltext"
	"kdap/internal/relation"
)

// Hit is one attribute instance matching a keyword: the triplet
// (table, attribute, value) of §4.2 plus its full-query relevance score
// Sim(h.val, q).
type Hit struct {
	Table string
	Attr  string
	Value relation.Value
	Score float64
	// RawScore is the original single-keyword similarity before any
	// phrase re-scoring (§4.3). The Figure 4 baseline method averages
	// these directly, since the baseline of Hristidis et al. has no
	// phrase-update step.
	RawScore float64
}

// HitGroup collects the hits of one or more keywords that fall in the same
// attribute domain (same table and attribute). After phrase merging a
// group may cover several keywords.
type HitGroup struct {
	Table string
	Attr  string
	Hits  []Hit
	// Keywords holds the zero-based indexes of the query keywords this
	// group covers (one for plain groups, several after phrase merge).
	Keywords []int
	// Phrase is the merged phrase text when the group was produced by the
	// §4.3 merge, empty otherwise.
	Phrase string
}

// Domain returns the attribute domain identifier "Table.Attr".
func (g *HitGroup) Domain() string { return g.Table + "." + g.Attr }

// Values returns the distinct attribute values of the group's hits.
func (g *HitGroup) Values() []relation.Value {
	out := make([]relation.Value, len(g.Hits))
	for i, h := range g.Hits {
		out[i] = h.Value
	}
	return out
}

// BestScore returns the highest hit score in the group.
func (g *HitGroup) BestScore() float64 {
	best := 0.0
	for _, h := range g.Hits {
		if h.Score > best {
			best = h.Score
		}
	}
	return best
}

// SumScore returns the sum of the group's hit scores.
func (g *HitGroup) SumScore() float64 {
	var s float64
	for _, h := range g.Hits {
		s += h.Score
	}
	return s
}

// HitSet is the hit set H_i of one keyword: its hits organized into hit
// groups by attribute domain.
type HitSet struct {
	Keyword string
	Index   int // zero-based position of the keyword in the query
	Groups  []*HitGroup
}

// hitLimits bound the differentiate phase so that very ambiguous keywords
// stay interactive, per §4.1's responsiveness concern. Groups and hits are
// ranked before truncation, so only the weakest interpretations are cut.
type hitLimits struct {
	maxHitsPerKeyword  int
	maxGroupsPerHitSet int
	maxHitsPerGroup    int
}

func defaultHitLimits() hitLimits {
	return hitLimits{maxHitsPerKeyword: 200, maxGroupsPerHitSet: 12, maxHitsPerGroup: 64}
}

// buildHitSets probes the full-text index once per keyword; each hit
// carries the similarity between the keyword and the attribute instance
// (§4.3 notes that "the original score only reflects the similarity
// between the single keyword and the textual attribute instance" — phrase
// merging later re-scores merged groups against the whole phrase). Hits
// within a hit set are grouped by attribute domain.
func buildHitSets(ctx context.Context, ix *fulltext.Index, keywords []string, lim hitLimits, sim fulltext.Similarity) ([]*HitSet, error) {
	sets := make([]*HitSet, 0, len(keywords))
	for i, kw := range keywords {
		hits, err := ix.SearchCtx(ctx, kw, fulltext.Options{Prefix: true, Limit: lim.maxHitsPerKeyword, Similarity: sim})
		if err != nil {
			return nil, err
		}
		groups := make(map[string]*HitGroup)
		var order []string
		for _, fh := range hits {
			score := fh.Score
			key := fh.Doc.Table + "." + fh.Doc.Attr
			g := groups[key]
			if g == nil {
				g = &HitGroup{Table: fh.Doc.Table, Attr: fh.Doc.Attr, Keywords: []int{i}}
				groups[key] = g
				order = append(order, key)
			}
			if len(g.Hits) < lim.maxHitsPerGroup {
				g.Hits = append(g.Hits, Hit{Table: fh.Doc.Table, Attr: fh.Doc.Attr,
					Value: fh.Doc.Value, Score: score, RawScore: score})
			}
		}
		hs := &HitSet{Keyword: kw, Index: i}
		for _, key := range order {
			hs.Groups = append(hs.Groups, groups[key])
		}
		// Rank groups by best hit score (then domain for determinism) and
		// truncate to the strongest interpretations.
		sort.SliceStable(hs.Groups, func(a, b int) bool {
			sa, sb := hs.Groups[a].BestScore(), hs.Groups[b].BestScore()
			if sa != sb {
				return sa > sb
			}
			return hs.Groups[a].Domain() < hs.Groups[b].Domain()
		})
		if len(hs.Groups) > lim.maxGroupsPerHitSet {
			hs.Groups = hs.Groups[:lim.maxGroupsPerHitSet]
		}
		sets = append(sets, hs)
	}
	return sets, nil
}

// mergePhrases implements §4.3: whenever hit groups from different hit
// sets share the same attribute domain AND overlap in at least one hit,
// the keywords likely form a phrase ("San Jose"). The merged group is
// their intersection, covering both keywords, re-scored by consulting the
// text engine with the phrase query. Merging generalizes to chains of
// more than two keywords by repeated pairwise merging.
//
// Merged groups are appended as additional candidates; the originals stay
// so that non-phrase interpretations remain available (the paper keeps
// "San Antonio" as a candidate, just ranked lower).
func mergePhrases(ctx context.Context, ix *fulltext.Index, sets []*HitSet, keywords []string, sim fulltext.Similarity) ([]*HitGroup, error) {
	var merged []*HitGroup

	// Start from each group, try to extend with groups of later keywords.
	var extend func(cur *HitGroup) error
	extend = func(cur *HitGroup) error {
		last := cur.Keywords[len(cur.Keywords)-1]
		for _, hs := range sets {
			if hs.Index <= last {
				continue
			}
			for _, g := range hs.Groups {
				if g.Table != cur.Table || g.Attr != cur.Attr {
					continue
				}
				inter := intersectHits(cur.Hits, g.Hits)
				if len(inter) == 0 {
					continue
				}
				phraseWords := make([]string, 0, len(cur.Keywords)+1)
				for _, ki := range cur.Keywords {
					phraseWords = append(phraseWords, keywords[ki])
				}
				phraseWords = append(phraseWords, keywords[hs.Index])
				phrase := strings.Join(phraseWords, " ")
				rescored, err := rescorePhrase(ctx, ix, cur.Table, cur.Attr, inter, phrase, sim)
				if err != nil {
					return err
				}
				if len(rescored) == 0 {
					continue
				}
				m := &HitGroup{
					Table:    cur.Table,
					Attr:     cur.Attr,
					Hits:     rescored,
					Keywords: append(append([]int(nil), cur.Keywords...), hs.Index),
					Phrase:   phrase,
				}
				merged = append(merged, m)
				if err := extend(m); err != nil {
					return err
				}
			}
			// Only extend into the immediately next keyword position:
			// phrases are contiguous in the query.
			break
		}
		return nil
	}
	for _, hs := range sets {
		for _, g := range hs.Groups {
			if err := extend(g); err != nil {
				return nil, err
			}
		}
	}
	return merged, nil
}

// intersectHits returns the hits present (by value) in both slices; the
// surviving hit's raw score averages both sides' single-keyword scores.
func intersectHits(a, b []Hit) []Hit {
	inB := make(map[relation.Value]float64, len(b))
	for _, h := range b {
		inB[h.Value] = h.RawScore
	}
	var out []Hit
	for _, h := range a {
		if raw, ok := inB[h.Value]; ok {
			merged := h
			merged.RawScore = (h.RawScore + raw) / 2
			out = append(out, merged)
		}
	}
	return out
}

// rescorePhrase re-queries the text engine with the merged phrase (§4.3:
// "the system also needs to update the score by consulting the full-text
// engine again"). Hits containing the exact phrase get phrase scores;
// hits containing all the words in order within a small window ("Tires
// Tubes" inside "Tires and Tubes") fall back to the all-words score —
// the paper's merge condition is domain + non-empty intersection, not
// strict adjacency, but an unbounded window would merge unrelated words
// from long descriptions.
func rescorePhrase(ctx context.Context, ix *fulltext.Index, table, attr string, hits []Hit, phrase string, sim fulltext.Similarity) ([]Hit, error) {
	phraseHits, err := ix.SearchPhraseCtx(ctx, phrase, fulltext.Options{Similarity: sim})
	if err != nil {
		return nil, err
	}
	phraseScores := make(map[relation.Value]float64)
	for _, ph := range phraseHits {
		if ph.Doc.Table == table && ph.Doc.Attr == attr {
			phraseScores[ph.Doc.Value] = ph.Score
		}
	}
	var wordScores map[relation.Value]float64
	allWords := func(v relation.Value) (float64, bool, error) {
		if wordScores == nil {
			wordScores = make(map[relation.Value]float64)
			terms := fulltext.Terms(phrase)
			wordHits, err := ix.SearchCtx(ctx, phrase, fulltext.Options{Similarity: sim})
			if err != nil {
				return 0, false, err
			}
			for _, wh := range wordHits {
				if wh.Doc.Table != table || wh.Doc.Attr != attr {
					continue
				}
				if containsTermsNear(wh.Doc.Value.Text(), terms, phraseSlop) {
					wordScores[wh.Doc.Value] = wh.Score
				}
			}
		}
		s, ok := wordScores[v]
		return s, ok, nil
	}
	var out []Hit
	for _, h := range hits {
		if s, ok := phraseScores[h.Value]; ok {
			out = append(out, Hit{Table: h.Table, Attr: h.Attr, Value: h.Value, Score: s, RawScore: h.RawScore})
		} else if s, ok, err := allWords(h.Value); err != nil {
			return nil, err
		} else if ok {
			out = append(out, Hit{Table: h.Table, Attr: h.Attr, Value: h.Value, Score: s, RawScore: h.RawScore})
		}
	}
	return out, nil
}

// phraseSlop is the largest gap allowed between consecutive phrase words
// in the near-phrase merge fallback (Lucene's phrase slop, fixed small).
const phraseSlop = 1

// containsTermsNear reports whether the text contains every term in
// order, with at most slop intervening words between consecutive terms.
func containsTermsNear(text string, terms []string, slop int) bool {
	if len(terms) == 0 {
		return true
	}
	toks := fulltext.Tokenize(text)
	// Try a greedy chain from every occurrence of the first term: each
	// later term must occur after the previous match within slop+1
	// positions.
	for start, tok := range toks {
		if tok.Term != terms[0] {
			continue
		}
		prevPos := tok.Pos
		i := start + 1
		ok := true
		for _, term := range terms[1:] {
			found := false
			for ; i < len(toks); i++ {
				if toks[i].Pos-prevPos > slop+1 {
					break // everything further is out of reach too
				}
				if toks[i].Term == term {
					prevPos = toks[i].Pos
					i++
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
