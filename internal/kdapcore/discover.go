package kdapcore

import (
	"fmt"
	"math"
	"sort"

	"kdap/internal/relation"
	"kdap/internal/schemagraph"
)

// Discovery is one result of a batch interestingness scan: a subspace
// (one instance of the scanned hierarchy level) together with its most
// interesting group-by attribute and that attribute's Equation 1 score.
type Discovery struct {
	// Value is the scanned level's instance defining the subspace
	// ("Mountain Bikes", "California", …).
	Value relation.Value
	// Rows is the subspace size in fact rows.
	Rows int
	// Aggregate is the engine measure's aggregate over the subspace.
	Aggregate float64
	// BestAttr is the group-by attribute whose partition scored highest
	// for the requested mode, with Role its join role.
	BestAttr schemagraph.AttrRef
	Role     string
	// Score is Equation 1's value for BestAttr.
	Score float64
}

// Discover runs the explore phase's interestingness machinery as a batch
// scan, without a keyword query: every instance of the given hierarchy
// level becomes a candidate subspace, scored by its best group-by
// attribute under the requested mode, and the topK most interesting
// subspaces are returned, best first.
//
// This is discovery-driven exploration in the sense of Sarawagi et al. —
// the paper's §5.2.1 relies on the analyst's keywords to pick the
// subspace; Discover inverts that and surfaces the subspaces an analyst
// should look at. (The paper leaves automatic candidate discovery as
// future work.)
func (e *Engine) Discover(level schemagraph.AttrRef, role string, mode InterestMode, topK int) ([]Discovery, error) {
	if topK <= 0 {
		return nil, fmt.Errorf("kdap: non-positive topK")
	}
	table := e.graph.DB().Table(level.Table)
	if table == nil {
		return nil, fmt.Errorf("kdap: no table %q", level.Table)
	}
	path, ok := e.graph.PathFromFact(level.Table, role)
	if !ok {
		return nil, fmt.Errorf("kdap: %s cannot reach the fact table", level)
	}
	opts := DefaultExploreOptions()
	opts.Mode = mode
	opts.TopKAttrs = 1
	opts.TopKInstances = 1

	var out []Discovery
	for _, v := range table.DistinctValues(level.Attr) {
		hg := &HitGroup{
			Table: level.Table,
			Attr:  level.Attr,
			Hits:  []Hit{{Table: level.Table, Attr: level.Attr, Value: v, Score: 1, RawScore: 1}},
		}
		sn := &StarNet{
			Query:  fmt.Sprintf("discover:%s=%s", level, v.Text()),
			Groups: []BoundGroup{{Group: hg, Path: path}},
		}
		rows := e.SubspaceRows(sn)
		if len(rows) == 0 {
			continue
		}
		facets, err := e.Explore(sn, opts)
		if err != nil {
			continue
		}
		best := Discovery{
			Value: v, Rows: len(rows), Aggregate: facets.TotalAggregate,
			Score: math.Inf(-1),
		}
		for _, d := range facets.Dimensions {
			for _, a := range d.Attributes {
				if a.Promoted {
					continue
				}
				if a.Score > best.Score {
					best.Score = a.Score
					best.BestAttr = a.Attr
					best.Role = a.Role
				}
			}
		}
		if math.IsInf(best.Score, -1) {
			continue
		}
		out = append(out, best)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Value.Text() < out[j].Value.Text()
	})
	if len(out) > topK {
		out = out[:topK]
	}
	return out, nil
}
