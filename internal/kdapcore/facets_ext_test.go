package kdapcore

import (
	"math"
	"testing"

	"kdap/internal/schemagraph"
)

// Parallel exploration must produce byte-identical facets to sequential.
func TestExploreParallelEquivalence(t *testing.T) {
	e, sn, _ := exploreColumbusLCD(t, Surprise)
	seq := DefaultExploreOptions()
	par := DefaultExploreOptions()
	par.Parallel = true
	fs, err := e.Explore(sn, seq)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := e.Explore(sn, par)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Dimensions) != len(fp.Dimensions) {
		t.Fatalf("dimension counts differ: %d vs %d", len(fs.Dimensions), len(fp.Dimensions))
	}
	for i := range fs.Dimensions {
		ds, dp := fs.Dimensions[i], fp.Dimensions[i]
		if ds.Dimension != dp.Dimension || len(ds.Attributes) != len(dp.Attributes) {
			t.Fatalf("dimension %d differs: %v vs %v", i, ds.Dimension, dp.Dimension)
		}
		for j := range ds.Attributes {
			as, ap := ds.Attributes[j], dp.Attributes[j]
			if as.Attr != ap.Attr || as.Score != ap.Score || len(as.Instances) != len(ap.Instances) {
				t.Errorf("facet %s/%s differs between modes", ds.Dimension, as.Attr.Attr)
			}
			for k := range as.Instances {
				if as.Instances[k] != ap.Instances[k] {
					t.Errorf("instance %d of %s differs", k, as.Attr.Attr)
				}
			}
		}
	}
}

// Pinned attributes survive the top-k cut (§7 hybrid consistency).
func TestExplorePinnedAttributes(t *testing.T) {
	e, sn, _ := exploreColumbusLCD(t, Surprise)
	base := DefaultExploreOptions()
	base.TopKAttrs = 1
	f1, err := e.Explore(sn, base)
	if err != nil {
		t.Fatal(err)
	}
	// Find a Customer attribute NOT shown at k=1.
	shown := map[schemagraph.AttrRef]bool{}
	for _, d := range f1.Dimensions {
		for _, a := range d.Attributes {
			shown[a.Attr] = true
		}
	}
	var hidden schemagraph.AttrRef
	for _, d := range e.Graph().Dimensions() {
		for _, gb := range d.GroupBy {
			if !shown[gb] {
				hidden = gb
			}
		}
	}
	if hidden == (schemagraph.AttrRef{}) {
		t.Skip("nothing hidden at k=1")
	}
	pinnedOpts := base
	pinnedOpts.Pinned = []schemagraph.AttrRef{hidden}
	f2, err := e.Explore(sn, pinnedOpts)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range f2.Dimensions {
		for _, a := range d.Attributes {
			if a.Attr == hidden {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("pinned attribute %v not shown", hidden)
	}
}

// The subspace cache returns identical row sets and survives repeated
// exploration.
func TestSubspaceRowsCached(t *testing.T) {
	e := ebizEngine()
	nets, _ := e.Differentiate("Columbus LCD")
	sn := nets[0]
	a := e.SubspaceRows(sn)
	b := e.SubspaceRows(sn)
	if len(a) != len(b) {
		t.Fatal("cached rows differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("cached rows differ")
		}
	}
	// Many distinct nets must not grow the cache unboundedly (eviction
	// path exercised; behavior stays correct).
	for _, q := range []string{"Projectors", "Columbus", "LCD", "Seattle", "Portland"} {
		ns, _ := e.Differentiate(q)
		for _, n := range ns {
			_ = e.SubspaceRows(n)
		}
	}
	c := e.SubspaceRows(sn)
	if len(c) != len(a) {
		t.Fatal("rows changed after eviction churn")
	}
}

func TestExploreConcurrentSessions(t *testing.T) {
	e := ebizEngine()
	nets, _ := e.Differentiate("Columbus LCD")
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(i int) {
			opts := DefaultExploreOptions()
			opts.Parallel = i%2 == 0
			_, err := e.Explore(nets[i%len(nets)], opts)
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// Greedy and annealed merges are both exposed through facet options via
// MergeIntervals / MergeIntervalsGreedy; sanity-check they agree on a
// trivially mergeable series.
func TestMergeAlgorithmsAgreeOnEasySeries(t *testing.T) {
	x := []float64{1, 1, 1, 10, 10, 10, 100, 100, 100}
	y := []float64{2, 2, 2, 20, 20, 20, 200, 200, 200}
	cfg := AnnealConfig{K: 3, L: 4, N: 300, AcceptProb: 0.25, Seed: 1}
	sa := MergeIntervals(x, y, cfg)
	gr := MergeIntervalsGreedy(x, y, cfg)
	if math.Abs(sa.Score-gr.Score) > 0.05 {
		t.Errorf("scores diverge: SA %.4f vs greedy %.4f", sa.Score, gr.Score)
	}
}

func TestDrillRangeNarrowsNumeric(t *testing.T) {
	e, sn, f := exploreColumbusLCD(t, Surprise)
	var attr schemagraph.AttrRef
	var role string
	var lo, hi float64
	found := false
	for _, d := range f.Dimensions {
		for _, a := range d.Attributes {
			if a.Numeric && len(a.Instances) > 1 {
				attr, role = a.Attr, a.Role
				lo, hi = a.Instances[0].Lo, a.Instances[0].Hi
				found = true
			}
		}
	}
	if !found {
		t.Skip("no numeric facet with multiple ranges")
	}
	drilled, err := e.DrillRange(sn, attr, role, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	before := len(e.SubspaceRows(sn))
	after := len(e.SubspaceRows(drilled))
	if after == 0 || after >= before {
		t.Errorf("range drill: %d -> %d rows", before, after)
	}
	if len(drilled.Filters) != len(sn.Filters)+2 {
		t.Errorf("filters = %d", len(drilled.Filters))
	}
	// The drilled subspace's values all lie within the range.
	path, _ := e.Graph().PathFromFact(attr.Table, role)
	vals := e.Executor().NumericSeries(e.SubspaceRows(drilled), attr.Attr, path, e.Measure())
	for _, vm := range vals {
		if vm.Value < lo || vm.Value > hi {
			t.Fatalf("value %g outside [%g, %g]", vm.Value, lo, hi)
		}
	}
	// Exploring after a range drill works.
	if _, err := e.Explore(drilled, DefaultExploreOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestDrillRangeOnFactMeasure(t *testing.T) {
	e := ebizEngine()
	nets, _ := e.Differentiate("Projectors")
	sn := nets[0]
	drilled, err := e.DrillRange(sn, schemagraph.AttrRef{Table: "TRANSITEM", Attr: "UnitPrice"}, "", 1000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	rows := e.SubspaceRows(drilled)
	if len(rows) == 0 || len(rows) >= len(e.SubspaceRows(sn)) {
		t.Errorf("fact-measure range drill: %d rows", len(rows))
	}
}

func TestDrillRangeErrors(t *testing.T) {
	e := ebizEngine()
	nets, _ := e.Differentiate("Projectors")
	if _, err := e.DrillRange(nets[0], schemagraph.AttrRef{Table: "CUSTOMER", Attr: "Income"}, "Buyer", 10, 5); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := e.DrillRange(nets[0], schemagraph.AttrRef{Table: "GHOST", Attr: "X"}, "Buyer", 1, 2); err == nil {
		t.Error("unreachable table accepted")
	}
}

// A custom interestingness function (here: absolute deviation, "surprise
// in either direction") plugs into the framework per §3's claim.
func TestCustomInterestingness(t *testing.T) {
	e, sn, _ := exploreColumbusLCD(t, Surprise)
	opts := DefaultExploreOptions()
	opts.CustomScore = func(corr float64) float64 { return math.Abs(corr) }
	f, err := e.Explore(sn, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Dimensions {
		for _, a := range d.Attributes {
			if a.Promoted {
				continue
			}
			if a.Score != uninformativeScore && (a.Score < 0 || a.Score > 1) {
				t.Errorf("custom |corr| score out of range: %s = %g", a.Attr, a.Score)
			}
		}
	}
}

// Spearman-based scoring is a drop-in for Pearson and stays in range.
func TestRankCorrelationOption(t *testing.T) {
	e, sn, _ := exploreColumbusLCD(t, Surprise)
	opts := DefaultExploreOptions()
	opts.RankCorrelation = true
	f, err := e.Explore(sn, opts)
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	base, _ := e.Explore(sn, DefaultExploreOptions())
	baseScores := map[string]float64{}
	for _, d := range base.Dimensions {
		for _, a := range d.Attributes {
			baseScores[a.Attr.String()] = a.Score
		}
	}
	for _, d := range f.Dimensions {
		for _, a := range d.Attributes {
			if a.Promoted {
				continue
			}
			if a.Score != uninformativeScore && (a.Score < -1-1e-9 || a.Score > 1+1e-9) {
				t.Errorf("%s score %g out of range", a.Attr, a.Score)
			}
			if bs, ok := baseScores[a.Attr.String()]; ok && bs != a.Score {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("rank correlation produced identical scores everywhere — option not wired?")
	}
}
