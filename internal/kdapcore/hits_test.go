package kdapcore

import (
	"context"
	"reflect"
	"testing"

	"kdap/internal/fulltext"
	"kdap/internal/relation"
)

func cityIndex() *fulltext.Index {
	ix := fulltext.NewIndex()
	ix.Add("Loc", "City", relation.String("San Jose"))
	ix.Add("Loc", "City", relation.String("San Antonio"))
	ix.Add("Loc", "City", relation.String("San Francisco"))
	ix.Add("Cust", "FirstName", relation.String("Jose"))
	ix.Add("Loc", "State", relation.String("New South Wales"))
	ix.Add("Prod", "Name", relation.String("Software"))
	ix.Add("Prod", "Name", relation.String("Electronics"))
	return ix
}

func TestBuildHitSetsGroupsByDomain(t *testing.T) {
	ix := cityIndex()
	sets, _ := buildHitSets(context.Background(), ix, []string{"san", "jose"}, defaultHitLimits(), fulltext.ClassicTFIDF)
	if len(sets) != 2 {
		t.Fatalf("sets = %d", len(sets))
	}
	san := sets[0]
	if san.Keyword != "san" || san.Index != 0 {
		t.Errorf("first set = %+v", san)
	}
	if len(san.Groups) != 1 || san.Groups[0].Domain() != "Loc.City" {
		t.Fatalf("san groups = %+v", san.Groups)
	}
	if len(san.Groups[0].Hits) != 3 {
		t.Errorf("san city hits = %d", len(san.Groups[0].Hits))
	}
	jose := sets[1]
	domains := map[string]bool{}
	for _, g := range jose.Groups {
		domains[g.Domain()] = true
	}
	if !domains["Loc.City"] || !domains["Cust.FirstName"] {
		t.Errorf("jose domains = %v", domains)
	}
	// Every hit carries matching Raw and live scores initially.
	for _, g := range jose.Groups {
		for _, h := range g.Hits {
			if h.Score != h.RawScore || h.Score <= 0 {
				t.Errorf("hit scores: %+v", h)
			}
		}
	}
}

func TestBuildHitSetsLimits(t *testing.T) {
	ix := fulltext.NewIndex()
	for i := 0; i < 30; i++ {
		ix.Add("T", "A", relation.String("word variant "+string(rune('a'+i))))
		ix.Add("T2", "B", relation.String("word other "+string(rune('a'+i))))
	}
	lim := hitLimits{maxHitsPerKeyword: 100, maxGroupsPerHitSet: 1, maxHitsPerGroup: 5}
	sets, _ := buildHitSets(context.Background(), ix, []string{"word"}, lim, fulltext.ClassicTFIDF)
	if len(sets[0].Groups) != 1 {
		t.Errorf("group cap not applied: %d", len(sets[0].Groups))
	}
	if len(sets[0].Groups[0].Hits) != 5 {
		t.Errorf("hit cap not applied: %d", len(sets[0].Groups[0].Hits))
	}
}

func TestMergePhrasesSanJose(t *testing.T) {
	ix := cityIndex()
	kws := []string{"San", "Jose"}
	sets, _ := buildHitSets(context.Background(), ix, kws, defaultHitLimits(), fulltext.ClassicTFIDF)
	merged, _ := mergePhrases(context.Background(), ix, sets, kws, fulltext.ClassicTFIDF)
	if len(merged) != 1 {
		t.Fatalf("merged groups = %d", len(merged))
	}
	m := merged[0]
	if m.Domain() != "Loc.City" || m.Phrase != "San Jose" {
		t.Errorf("merged = %+v", m)
	}
	if !reflect.DeepEqual(m.Keywords, []int{0, 1}) {
		t.Errorf("keywords = %v", m.Keywords)
	}
	if len(m.Hits) != 1 || m.Hits[0].Value.Text() != "San Jose" {
		t.Errorf("merged hits = %v", m.Hits)
	}
	// The phrase re-score must differ from the single-keyword raw score.
	if m.Hits[0].Score == m.Hits[0].RawScore {
		t.Error("phrase rescoring did not update the score")
	}
}

func TestMergePhrasesThreeWay(t *testing.T) {
	ix := cityIndex()
	kws := []string{"New", "South", "Wales"}
	sets, _ := buildHitSets(context.Background(), ix, kws, defaultHitLimits(), fulltext.ClassicTFIDF)
	merged, _ := mergePhrases(context.Background(), ix, sets, kws, fulltext.ClassicTFIDF)
	var full *HitGroup
	for _, m := range merged {
		if len(m.Keywords) == 3 {
			full = m
		}
	}
	if full == nil {
		t.Fatalf("no 3-way merge; merged = %d groups", len(merged))
	}
	if full.Phrase != "New South Wales" || full.Hits[0].Value.Text() != "New South Wales" {
		t.Errorf("full merge = %+v", full)
	}
}

// §4.3's counter-example: "Software Electronics" share the domain but
// have no overlapping hit, so they must NOT merge (the user wants two
// slices side by side).
func TestMergePhrasesRequiresOverlap(t *testing.T) {
	ix := cityIndex()
	kws := []string{"Software", "Electronics"}
	sets, _ := buildHitSets(context.Background(), ix, kws, defaultHitLimits(), fulltext.ClassicTFIDF)
	if merged, _ := mergePhrases(context.Background(), ix, sets, kws, fulltext.ClassicTFIDF); len(merged) != 0 {
		t.Errorf("non-overlapping groups merged: %+v", merged[0])
	}
}

// Non-adjacent keywords must not merge as a phrase.
func TestMergePhrasesOnlyAdjacentKeywords(t *testing.T) {
	ix := cityIndex()
	kws := []string{"San", "Wales", "Jose"} // San..Jose not adjacent
	sets, _ := buildHitSets(context.Background(), ix, kws, defaultHitLimits(), fulltext.ClassicTFIDF)
	merged, _ := mergePhrases(context.Background(), ix, sets, kws, fulltext.ClassicTFIDF)
	for _, m := range merged {
		if reflect.DeepEqual(m.Keywords, []int{0, 2}) {
			t.Errorf("non-contiguous keywords merged: %+v", m)
		}
	}
}

func TestContainsTermsNear(t *testing.T) {
	if !containsTermsNear("Tires and Tubes", []string{"tire", "tube"}, 1) {
		t.Error("one-word gap rejected")
	}
	if containsTermsNear("Tires and Tubes", []string{"tire", "wheel"}, 1) {
		t.Error("missing term accepted")
	}
	if containsTermsNear("Tubes and Tires", []string{"tire", "tube"}, 1) {
		t.Error("out-of-order terms accepted")
	}
	if containsTermsNear("bike stand for working on your bike", []string{"bike", "work"}, 1) {
		t.Error("two intervening words accepted at slop 1")
	}
	// A later start must be found when the first occurrence dead-ends.
	if !containsTermsNear("tire x x x x tire tube", []string{"tire", "tube"}, 1) {
		t.Error("restart at a later first-term occurrence missed")
	}
	if !containsTermsNear("anything", nil, 1) {
		t.Error("empty terms should be contained")
	}
}

func TestHitGroupAccessors(t *testing.T) {
	g := &HitGroup{Table: "T", Attr: "A", Hits: []Hit{
		{Value: relation.String("x"), Score: 0.5},
		{Value: relation.String("y"), Score: 1.5},
	}}
	if g.Domain() != "T.A" {
		t.Error("Domain")
	}
	if g.BestScore() != 1.5 || g.SumScore() != 2.0 {
		t.Error("scores")
	}
	vals := g.Values()
	if len(vals) != 2 || vals[0].Text() != "x" {
		t.Errorf("Values = %v", vals)
	}
	empty := &HitGroup{}
	if empty.BestScore() != 0 || empty.SumScore() != 0 {
		t.Error("empty group scores")
	}
}

func TestEnumerateSeedsExactCover(t *testing.T) {
	mk := func(dom string, kws ...int) *HitGroup {
		return &HitGroup{Table: dom, Attr: "A", Keywords: kws,
			Hits: []Hit{{Value: relation.String(dom), Score: 1}}}
	}
	sets := []*HitSet{
		{Keyword: "a", Index: 0, Groups: []*HitGroup{mk("A1", 0), mk("A2", 0)}},
		{Keyword: "b", Index: 1, Groups: []*HitGroup{mk("B1", 1)}},
		{Keyword: "c", Index: 2, Groups: []*HitGroup{mk("C1", 2)}},
	}
	merged := []*HitGroup{mk("AB", 0, 1)}
	seeds := enumerateSeeds(sets, merged, 100)
	// Covers: {A1,B1,C1}, {A2,B1,C1}, {AB,C1} = 3 exact covers.
	if len(seeds) != 3 {
		t.Fatalf("seeds = %d", len(seeds))
	}
	for _, s := range seeds {
		covered := map[int]int{}
		for _, g := range s {
			for _, k := range g.Keywords {
				covered[k]++
			}
		}
		for k := 0; k < 3; k++ {
			if covered[k] != 1 {
				t.Errorf("seed %v covers keyword %d %d times", s, k, covered[k])
			}
		}
	}
}

func TestEnumerateSeedsSkipsEmptyHitSets(t *testing.T) {
	mk := func(dom string, kws ...int) *HitGroup {
		return &HitGroup{Table: dom, Attr: "A", Keywords: kws}
	}
	sets := []*HitSet{
		{Keyword: "hit", Index: 0, Groups: []*HitGroup{mk("A", 0)}},
		{Keyword: "miss", Index: 1}, // no groups
		{Keyword: "hit2", Index: 2, Groups: []*HitGroup{mk("B", 2)}},
	}
	seeds := enumerateSeeds(sets, nil, 100)
	if len(seeds) != 1 || len(seeds[0]) != 2 {
		t.Fatalf("seeds = %+v", seeds)
	}
}

func TestEnumerateSeedsAllEmpty(t *testing.T) {
	sets := []*HitSet{{Keyword: "x", Index: 0}, {Keyword: "y", Index: 1}}
	if seeds := enumerateSeeds(sets, nil, 100); len(seeds) != 0 {
		t.Errorf("empty hit sets produced seeds: %v", seeds)
	}
}

func TestEnumerateSeedsCap(t *testing.T) {
	mk := func(i, k int) *HitGroup {
		return &HitGroup{Table: "T", Attr: string(rune('A' + i)), Keywords: []int{k}}
	}
	var sets []*HitSet
	for k := 0; k < 4; k++ {
		hs := &HitSet{Keyword: "k", Index: k}
		for i := 0; i < 6; i++ {
			hs.Groups = append(hs.Groups, mk(i, k))
		}
		sets = append(sets, hs)
	}
	// 6^4 = 1296 covers; cap at 10.
	if seeds := enumerateSeeds(sets, nil, 10); len(seeds) != 10 {
		t.Errorf("cap not applied: %d", len(seeds))
	}
}
