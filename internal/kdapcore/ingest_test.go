package kdapcore

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"kdap/internal/dataset"
	"kdap/internal/olap"
	"kdap/internal/relation"
	"kdap/internal/workload"
)

// ingestTestEngine builds an engine with the paper's revenue measure
// (mirrors experiments.Engine, which tests in this package cannot
// import without a cycle).
func ingestTestEngine(wh *dataset.Warehouse) *Engine {
	fact := wh.DB.Table(wh.Graph.FactTable())
	var m olap.Measure
	switch {
	case fact.Schema().HasColumn("OrderQuantity"):
		m = olap.ProductMeasure(fact, "SalesRevenue", "UnitPrice", "OrderQuantity")
	case fact.Schema().HasColumn("Quantity"):
		m = olap.ProductMeasure(fact, "SalesRevenue", "UnitPrice", "Quantity")
	default:
		m = olap.CountMeasure()
	}
	return NewEngine(wh.Graph, wh.Index, m, olap.Sum)
}

// emptySubspaceErr mirrors the benchmark's classification of the one
// expected per-query failure mode.
func emptySubspaceErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), "empty sub-dataspace")
}

// cachedFingerprint resolves a query to its top net's facet fingerprint
// through the answer cache, reporting how the explore was served.
func cachedFingerprint(t *testing.T, e *Engine, q string, opts ExploreOptions) ([]byte, CacheOutcome) {
	t.Helper()
	ctx := context.Background()
	nets, _, err := e.DifferentiateCachedCtx(ctx, q)
	if err != nil {
		t.Fatalf("differentiate %q: %v", q, err)
	}
	if len(nets) == 0 {
		t.Fatalf("differentiate %q: no interpretations", q)
	}
	f, out, err := e.ExploreCachedCtx(ctx, nets[0], opts)
	if emptySubspaceErr(err) {
		return []byte("empty sub-dataspace"), out
	}
	if err != nil {
		t.Fatalf("explore %q: %v", q, err)
	}
	return f.Fingerprint(), out
}

// uncachedFingerprint is cachedFingerprint against an engine with no
// answer cache (the from-scratch oracle).
func uncachedFingerprint(t *testing.T, e *Engine, q string, opts ExploreOptions) []byte {
	t.Helper()
	nets, err := e.Differentiate(q)
	if err != nil {
		t.Fatalf("oracle differentiate %q: %v", q, err)
	}
	if len(nets) == 0 {
		t.Fatalf("oracle differentiate %q: no interpretations", q)
	}
	f, err := e.Explore(nets[0], opts)
	if emptySubspaceErr(err) {
		return []byte("empty sub-dataspace")
	}
	if err != nil {
		t.Fatalf("oracle explore %q: %v", q, err)
	}
	return f.Fingerprint()
}

// TestAppendCacheConsistencyProperty is the streaming-ingest cache
// oracle over the full 50-query workload: warm every query's answer,
// stream in a tail of facts, and re-ask everything. Two properties must
// hold for every query:
//
//  1. soundness — an explore served as a post-append cache hit must be
//     byte-identical to its pre-append fingerprint (the delta-scoped
//     eviction may only keep answers the appended rows cannot affect);
//  2. freshness — every post-append answer, hit or recomputed, must be
//     byte-identical to a from-scratch engine built over the full data
//     (a query whose answer the append changed had its key evicted).
func TestAppendCacheConsistencyProperty(t *testing.T) {
	const (
		scale    = 60_000
		resident = 45_000
	)
	wh, tail := dataset.AWOnlineScaledPartial(scale, resident)
	e := ingestTestEngine(wh)
	e.SetAnswerCache(256, 0)
	qs := workload.AWOnlineQueries()
	opts := DefaultExploreOptions()

	pre := make([][]byte, len(qs))
	for i, q := range qs {
		pre[i], _ = cachedFingerprint(t, e, q.Text, opts)
	}

	const batch = 4096
	for lo := 0; lo < len(tail); lo += batch {
		hi := lo + batch
		if hi > len(tail) {
			hi = len(tail)
		}
		if _, err := e.AppendFacts(context.Background(), tail[lo:hi]); err != nil {
			t.Fatalf("append [%d,%d): %v", lo, hi, err)
		}
	}

	oracle := ingestTestEngine(dataset.AWOnlineScaled(scale))
	changed, hits := 0, 0
	for i, q := range qs {
		post, out := cachedFingerprint(t, e, q.Text, opts)
		if out == CacheHit {
			hits++
			if !bytes.Equal(post, pre[i]) {
				t.Errorf("%q: served as a cache hit but differs from its pre-append answer", q.Text)
			}
		}
		if !bytes.Equal(post, pre[i]) {
			changed++
			if out == CacheHit {
				t.Errorf("%q: answer changed across the append yet its key was not evicted", q.Text)
			}
		}
		if want := uncachedFingerprint(t, oracle, q.Text, opts); !bytes.Equal(post, want) {
			t.Errorf("%q: post-append answer differs from the from-scratch rebuild", q.Text)
		}
	}
	if changed == 0 {
		t.Error("append of 15k facts changed no workload answer; the property test is vacuous")
	}
	t.Logf("%d/%d answers changed across the append, %d repeats served as hits", changed, len(qs), hits)
}

// TestAppendEvictionKeepsSoundAnswers pins the delta-scope decision on
// single appended rows: whatever the eviction pass decides, the next
// cached answer must match an engine built from scratch over the grown
// table. A kept answer in particular (served as a hit) proves the "this
// row cannot affect that answer" judgement, and the grid must exercise
// both branches.
func TestAppendEvictionKeepsSoundAnswers(t *testing.T) {
	const query = "Columbus LCD"
	opts := DefaultExploreOptions()
	var kept, evicted int
	for _, productKey := range []int64{1, 10, 20} {
		for _, transKey := range []int64{1, 500, 999} {
			row := []relation.Value{
				relation.Int(int64(dataset.EBizFactCount + 1)),
				relation.Int(transKey),
				relation.Int(productKey),
				relation.Int(3),
				relation.Float(9.99),
			}

			e := ingestTestEngine(dataset.EBiz())
			e.SetAnswerCache(64, 0)
			pre, _ := cachedFingerprint(t, e, query, opts)
			res, err := e.AppendFacts(context.Background(), [][]relation.Value{row})
			if err != nil {
				t.Fatalf("append product=%d trans=%d: %v", productKey, transKey, err)
			}
			if res.EvictedExplore+res.KeptExplore != 1 {
				t.Fatalf("product=%d trans=%d: evicted %d + kept %d, want the 1 cached answer accounted for",
					productKey, transKey, res.EvictedExplore, res.KeptExplore)
			}

			post, out := cachedFingerprint(t, e, query, opts)
			if res.KeptExplore == 1 {
				kept++
				if out != CacheHit {
					t.Errorf("product=%d trans=%d: answer kept but repeat not served as a hit (%v)", productKey, transKey, out)
				}
				if !bytes.Equal(post, pre) {
					t.Errorf("product=%d trans=%d: kept answer changed", productKey, transKey)
				}
			} else {
				evicted++
			}

			// Oracle: a fresh warehouse grown by the same row before any
			// engine structure exists.
			owh := dataset.EBiz()
			if _, err := owh.DB.Table(owh.Graph.FactTable()).AppendFacts([][]relation.Value{row}); err != nil {
				t.Fatal(err)
			}
			if want := uncachedFingerprint(t, ingestTestEngine(owh), query, opts); !bytes.Equal(post, want) {
				t.Errorf("product=%d trans=%d: post-append answer (kept=%d) differs from from-scratch rebuild",
					productKey, transKey, res.KeptExplore)
			}
		}
	}
	if kept == 0 || evicted == 0 {
		t.Errorf("grid exercised only one eviction branch: kept=%d evicted=%d", kept, evicted)
	}
}

// TestSubspaceRowsExtendAcrossAppend pins the rows-cache contract: a
// materialized row set is never evicted by an append — it extends
// itself over the appended range at next fetch, landing on exactly the
// rows a cold engine over the full table computes, ascending and
// duplicate-free.
func TestSubspaceRowsExtendAcrossAppend(t *testing.T) {
	const (
		scale    = 40_000
		resident = 30_000
	)
	wh, tail := dataset.AWOnlineScaledPartial(scale, resident)
	e := ingestTestEngine(wh)
	nets, err := e.Differentiate("Road Bikes")
	if err != nil || len(nets) == 0 {
		t.Fatalf("differentiate: %v (%d nets)", err, len(nets))
	}
	before := e.SubspaceRows(nets[0])
	if len(before) == 0 {
		t.Fatal("empty pre-append subspace")
	}

	if _, err := e.AppendFacts(context.Background(), tail); err != nil {
		t.Fatal(err)
	}
	after := e.SubspaceRows(nets[0])

	cold := ingestTestEngine(dataset.AWOnlineScaled(scale))
	coldNets, err := cold.Differentiate("Road Bikes")
	if err != nil || len(coldNets) == 0 {
		t.Fatalf("cold differentiate: %v (%d nets)", err, len(coldNets))
	}
	want := cold.SubspaceRows(coldNets[0])
	if len(after) != len(want) {
		t.Fatalf("extended row set has %d rows, cold engine %d", len(after), len(want))
	}
	for i := range after {
		if after[i] != want[i] {
			t.Fatalf("row %d: extended %d, cold %d", i, after[i], want[i])
		}
		if i > 0 && after[i] <= after[i-1] {
			t.Fatalf("extended row set not strictly ascending at %d: %d after %d", i, after[i], after[i-1])
		}
	}
	if len(after) <= len(before) {
		t.Fatalf("append did not grow the subspace: %d -> %d", len(before), len(after))
	}
}

// TestIngestConcurrentWithQueries is the writer/reader soak (run it
// under -race): one appender streams the tail in small batches while
// query workers differentiate, explore, and drill through the answer
// cache and the sharded executor. Afterwards every worker query must
// fingerprint byte-identically to a from-scratch build.
func TestIngestConcurrentWithQueries(t *testing.T) {
	const (
		scale    = 20_000
		resident = 12_000
		batch    = 512
	)
	wh, tail := dataset.AWOnlineScaledPartial(scale, resident)
	e := ingestTestEngine(wh)
	e.SetAnswerCache(128, 0)
	e.SetShards(8)
	queries := []string{
		"Road Bikes", "Mountain Bikes California", "Helmets", "Jerseys",
		"Touring Bikes", "Bottles and Cages", "Gloves", "Cleaners",
	}
	opts := DefaultExploreOptions()

	done := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				q := queries[(w+i)%len(queries)]
				nets, _, err := e.DifferentiateCachedCtx(ctx, q)
				if err != nil {
					errs <- fmt.Errorf("worker %d differentiate %q: %w", w, q, err)
					return
				}
				if len(nets) == 0 {
					continue
				}
				if _, _, err := e.ExploreCachedCtx(ctx, nets[0], opts); err != nil && !emptySubspaceErr(err) {
					errs <- fmt.Errorf("worker %d explore %q: %w", w, q, err)
					return
				}
				e.SubspaceRows(nets[0])
			}
		}(w)
	}

	for lo := 0; lo < len(tail); lo += batch {
		hi := lo + batch
		if hi > len(tail) {
			hi = len(tail)
		}
		if _, err := e.AppendFacts(context.Background(), tail[lo:hi]); err != nil {
			t.Errorf("append [%d,%d): %v", lo, hi, err)
			break
		}
		time.Sleep(2 * time.Millisecond) // let readers overlap every batch
	}
	close(done)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	oracle := ingestTestEngine(dataset.AWOnlineScaled(scale))
	for _, q := range queries {
		got, _ := cachedFingerprint(t, e, q, opts)
		if want := uncachedFingerprint(t, oracle, q, opts); !bytes.Equal(got, want) {
			t.Errorf("%q: post-soak answer differs from from-scratch rebuild", q)
		}
	}
}
