package kdapcore

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"kdap/internal/olap"
	"kdap/internal/relation"
	"kdap/internal/schemagraph"
	"kdap/internal/stats"
	"kdap/internal/telemetry"
)

// InterestMode selects the application-specific interestingness measure
// of §3: surprises (deviation from the roll-up trend) or bellwethers
// (local aggregates correlated with the larger region).
type InterestMode int

const (
	// Surprise scores a partition by the *negated* correlation between
	// the sub-dataspace series and the roll-up series (Equation 1): the
	// more the local distribution deviates from the background trend, the
	// more interesting.
	Surprise InterestMode = iota
	// Bellwether scores by the positive correlation: local regions that
	// track the larger region rank high (Chen et al.'s bellwethers).
	Bellwether
)

// String names the mode.
func (m InterestMode) String() string {
	switch m {
	case Surprise:
		return "surprise"
	case Bellwether:
		return "bellwether"
	default:
		return "unknown"
	}
}

// ExploreOptions parameterize facet construction.
type ExploreOptions struct {
	Mode InterestMode
	// TopKAttrs is the number of group-by attributes shown per dimension
	// (beyond promoted hit attributes).
	TopKAttrs int
	// TopKInstances is the number of attribute instances per facet.
	TopKInstances int
	// Buckets is the number of basic intervals for numerical attributes
	// (the paper's experiments settle on 40, §6.4).
	Buckets int
	// DisplayIntervals is K, the merged numeric categories shown (§5.3.2).
	DisplayIntervals int
	// SkewLimit is L, the merge skew constraint.
	SkewLimit float64
	// AnnealIters is N, the merge iteration count.
	AnnealIters int
	// Seed drives the annealer's random source.
	Seed uint64
	// Parallel scores candidate group-by attributes concurrently. The
	// result is identical to the sequential order; only wall-clock time
	// changes.
	Parallel bool
	// Pinned lists attributes that are always shown in their dimension's
	// facets regardless of interestingness rank — the §7 "hybrid"
	// consistency extension for users with a concrete aggregation goal.
	Pinned []schemagraph.AttrRef
	// RankCorrelation scores partitions with Spearman rank correlation
	// instead of Pearson — robust when one dominant category would
	// otherwise dictate the comparison.
	RankCorrelation bool
	// CustomScore, when non-nil, replaces the Mode's correlation-to-score
	// mapping: it receives the Pearson correlation between the
	// sub-dataspace and roll-up series of a candidate partition and
	// returns its interestingness. §3 stresses that interestingness is
	// application-specific; Surprise and Bellwether are the paper's two
	// instances and this hook admits others (e.g. |corr| for "any
	// deviation either way").
	CustomScore func(corr float64) float64
	// PartialOnDeadline degrades instead of failing when the context's
	// deadline fires during attribute scoring: ExploreCtx returns the
	// facets built from whatever attributes finished scoring, with
	// Facets.Partial set, rather than context.DeadlineExceeded. The
	// semijoin, total aggregate, roll-up build, and promoted facets must
	// still complete — cancellation before or during those stages always
	// errors, since there is no meaningful partial result without them.
	PartialOnDeadline bool
	// SegmentCacheMB, when positive, re-budgets the fact table's segment
	// page cache (disk-backed warehouses only; ignored for resident
	// facts) before the explore runs. Like Parallel it shapes resource
	// use, not output — facet bytes are identical under any budget — so
	// it is excluded from the answer-cache key.
	SegmentCacheMB int
}

// DefaultExploreOptions returns the paper's default parameters.
func DefaultExploreOptions() ExploreOptions {
	return ExploreOptions{
		Mode:             Surprise,
		TopKAttrs:        3,
		TopKInstances:    8,
		Buckets:          40,
		DisplayIntervals: 6,
		SkewLimit:        4,
		AnnealIters:      500,
		Seed:             1,
	}
}

// Instance is one attribute value (or numeric interval) inside a facet,
// with its aggregate over DS' and its Equation 2 deviation score.
type Instance struct {
	// Label renders the instance ("Mountain Bikes", "323 - 470").
	Label string
	// Value is the categorical attribute value; NULL for numeric ranges.
	Value relation.Value
	// Lo and Hi bound a numeric range instance.
	Lo, Hi float64
	// Aggregate is G(DS' | attr = this instance).
	Aggregate float64
	// Score is Equation 2: the share of this instance within DS' minus
	// its share within RUP(DS').
	Score float64
}

// AttrFacet is one ranked group-by attribute with its organized instances.
type AttrFacet struct {
	Attr schemagraph.AttrRef
	// Role is the join-path role used to reach the attribute.
	Role string
	// Score is the roll-up partitioning score (Equation 1 for surprise
	// mode); promoted attributes carry +Inf.
	Score float64
	// Promoted marks hit-group attributes that are always selected
	// (§5.2.1's hitted-dimension promotion).
	Promoted bool
	// Numeric marks numerically partitioned domains.
	Numeric bool
	// Instances are the facet's entries, ranked.
	Instances []Instance
}

// DimensionFacets groups the selected facets of one dimension.
type DimensionFacets struct {
	Dimension  string
	Hitted     bool
	Attributes []*AttrFacet
}

// Facets is the explore-phase result: the dynamically constructed
// multi-faceted interface over the chosen sub-dataspace.
type Facets struct {
	Net *StarNet
	// SubspaceSize is |DS'| in fact rows.
	SubspaceSize int
	// TotalAggregate is G(DS').
	TotalAggregate float64
	// Dimensions appear in static (alphabetical) order, per §5.1.
	Dimensions []*DimensionFacets
	// Partial marks a result degraded by ExploreOptions.PartialOnDeadline:
	// either the deadline fired during attribute scoring and only the
	// attributes scored so far are included, or (under cluster execution)
	// one or more worker nodes were lost and the facets cover only the
	// surviving shard ranges.
	Partial bool
	// DegradedNodes attributes a cluster-degraded partial answer: the
	// worker addresses whose shard ranges are missing from this result.
	// Empty for complete answers and for deadline-only degradation.
	DegradedNodes []string
}

// rollup is one background space RUP(DS'): the sub-dataspace generalized
// along one hitted dimension.
type rollup struct {
	dim  string
	rows []int
	agg  float64
	// key is the space's canonical identity (its constraint-and-filter
	// set): scans over the same roll-up space share work under it, both
	// across requests in a batch scope and in the engine's subspace
	// cache. Distinct interpretations meet at these keys constantly —
	// every single-group net rolls up to the same "all" space.
	key string
}

// Explore runs the second KDAP phase: build the dynamic facets of the
// star net's sub-dataspace.
func (e *Engine) Explore(sn *StarNet, opts ExploreOptions) (*Facets, error) {
	return e.ExploreCtx(context.Background(), sn, opts)
}

// ExploreCtx is Explore under a context; when a telemetry.Trace is
// attached, the stages of §5's facet construction are recorded as spans
// (subspace_semijoin → rollup_build → facet_score with per-attribute
// children → groupby_kernel / numeric_series / interval_anneal leaves).
// Stages attach directly under the caller's current span — traced
// callers name their trace root "explore", so no wrapper span is added
// here. When an answer cache is configured (SetAnswerCache), repeated
// and concurrent identical explores are served through it.
func (e *Engine) ExploreCtx(ctx context.Context, sn *StarNet, opts ExploreOptions) (*Facets, error) {
	f, _, err := e.ExploreCachedCtx(ctx, sn, opts)
	return f, err
}

// exploreUncached is the facet-construction pipeline itself.
func (e *Engine) exploreUncached(ctx context.Context, sn *StarNet, opts ExploreOptions) (*Facets, error) {
	if opts.TopKAttrs <= 0 || opts.TopKInstances <= 0 || opts.Buckets <= 0 {
		return nil, fmt.Errorf("kdap: non-positive explore options")
	}
	e.applySegmentBudget(opts)
	// Under cluster execution, PartialOnDeadline also covers node loss:
	// arming the context with a collector lets every row materialization
	// below (the base semijoin and each roll-up space) accept a degraded
	// scatter's surviving rows instead of failing, recording the lost
	// nodes for attribution. Without the opt-in, node loss stays an
	// error.
	var dc *degradeCollector
	if opts.PartialOnDeadline && e.scatter != nil {
		dc = &degradeCollector{}
		ctx = withDegradeCollector(ctx, dc)
	}
	rows, err := e.subspaceRowsCtx(ctx, sn)
	if err != nil {
		if dr, ok := degradedRows(ctx, err); ok {
			rows = dr
		} else {
			return nil, err
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("kdap: empty sub-dataspace for %q", sn.Query)
	}
	totalAgg, err := e.exec.AggregateCtx(ctx, rows, e.measure, e.agg)
	if err != nil {
		return nil, err
	}
	f := &Facets{
		Net:            sn,
		SubspaceSize:   len(rows),
		TotalAggregate: totalAgg,
	}
	_, rsp := telemetry.StartSpan(ctx, "rollup_build")
	rollups, err := e.buildRollupsCtx(ctx, sn)
	rsp.End()
	if err != nil {
		return nil, err
	}

	hitDims := map[string]bool{}
	for i := range sn.Groups {
		hitDims[sn.Groups[i].Path.Dim] = true
	}

	dims := e.graph.Dimensions()
	sort.Slice(dims, func(i, j int) bool { return dims[i].Name < dims[j].Name })

	// Lay out the scoring work: promoted facets are cheap and built
	// inline, candidate attributes become jobs that may run in parallel.
	type job struct {
		dim  int
		attr schemagraph.AttrRef
		role string
		out  *AttrFacet
		err  error
	}
	dfs := make([]*DimensionFacets, len(dims))
	var jobs []*job
	for di, d := range dims {
		dfs[di] = &DimensionFacets{Dimension: d.Name, Hitted: hitDims[d.Name]}
		role := d.Name
		for _, bg := range sn.Groups {
			if bg.Path.Dim == d.Name {
				role = bg.Path.Role
				break
			}
		}
		// Hit attributes are promoted unconditionally (§5.2.1 — they need
		// not be declared group-by candidates; the hit makes them one).
		promoted := map[schemagraph.AttrRef]bool{}
		for i := range sn.Groups {
			bg := &sn.Groups[i]
			if bg.Path.Dim != d.Name {
				continue
			}
			attr := schemagraph.AttrRef{Table: bg.Group.Table, Attr: bg.Group.Attr}
			if promoted[attr] {
				continue
			}
			promoted[attr] = true
			af, err := e.promotedFacet(ctx, attr, bg, rows, f.TotalAggregate, rollups, opts)
			if err != nil {
				return nil, err
			}
			dfs[di].Attributes = append(dfs[di].Attributes, af)
		}
		for _, attr := range d.GroupBy {
			if promoted[attr] {
				continue
			}
			jobs = append(jobs, &job{dim: di, attr: attr, role: role})
		}
	}
	sctx, ssp := telemetry.StartSpan(ctx, "facet_score")
	runJob := func(j *job) {
		jctx, jsp := telemetry.StartSpan(sctx, "score "+j.attr.String())
		j.out, j.err = e.scoreAttr(jctx, j.attr, j.role, rows, f.TotalAggregate, rollups, opts)
		jsp.End()
	}
	if opts.Parallel && len(jobs) > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for _, j := range jobs {
			wg.Add(1)
			sem <- struct{}{}
			go func(j *job) {
				defer wg.Done()
				runJob(j)
				<-sem
			}(j)
		}
		wg.Wait()
	} else {
		for _, j := range jobs {
			runJob(j)
			// Sequential scoring stops at the first cancelled job; the
			// remaining jobs would all fail the same way.
			if j.err != nil && ctx.Err() != nil {
				break
			}
		}
	}
	ssp.End()
	// The degradation decision (§7's responsiveness concern): a deadline
	// that fires during scoring either aborts the explore or — when the
	// caller opted in — downgrades to the attributes scored so far.
	if err := ctx.Err(); err != nil {
		if !opts.PartialOnDeadline {
			return nil, err
		}
		f.Partial = true
	} else {
		for _, j := range jobs {
			if j.err != nil {
				return nil, j.err
			}
		}
	}

	pinned := make(map[schemagraph.AttrRef]bool, len(opts.Pinned))
	for _, p := range opts.Pinned {
		pinned[p] = true
	}
	for di := range dims {
		var ranked []*AttrFacet
		for _, j := range jobs {
			if j.dim == di && j.out != nil {
				ranked = append(ranked, j.out)
			}
		}
		sort.SliceStable(ranked, func(i, j int) bool {
			if ranked[i].Score != ranked[j].Score {
				return ranked[i].Score > ranked[j].Score
			}
			return ranked[i].Attr.String() < ranked[j].Attr.String()
		})
		kept := ranked
		if len(kept) > opts.TopKAttrs {
			kept = kept[:opts.TopKAttrs]
		}
		// Pinned attributes survive the cut in rank order (§7 hybrid).
		for _, af := range ranked[len(kept):] {
			if pinned[af.Attr] {
				kept = append(kept, af)
			}
		}
		dfs[di].Attributes = append(dfs[di].Attributes, kept...)
		if len(dfs[di].Attributes) > 0 {
			f.Dimensions = append(f.Dimensions, dfs[di])
		}
	}
	// Node-loss degradation: any scatter that lost a node downgraded the
	// whole answer to the surviving shard ranges. Mark it partial — the
	// answer cache refuses partials, so a recovered cluster serves the
	// complete answer again — and attribute the dead nodes.
	if dc != nil {
		if failed := dc.failed(); len(failed) > 0 {
			f.Partial = true
			f.DegradedNodes = failed
		}
	}
	return f, nil
}

// generalizeConstraint lifts one hit group's constraint up its hierarchy
// by one level; ok is false when there is no parent level (the caller
// then drops the constraint, rolling up to "all").
func (e *Engine) generalizeConstraint(c olap.Constraint, role string) (olap.Constraint, bool) {
	attr := schemagraph.AttrRef{Table: c.Table, Attr: c.Attr}
	parent, dim, ok := e.graph.HierarchyParent(attr)
	if !ok {
		return olap.Constraint{}, false
	}
	hitTable := e.graph.DB().Table(c.Table)
	hitRows := hitTable.LookupIn(c.Attr, c.Values)
	paths := e.graph.InnerPathsWithin(c.Table, parent.Table, dim)
	if len(paths) == 0 {
		return olap.Constraint{}, false
	}
	parentVals := e.exec.DimValues(c.Table, hitRows, paths[0], parent.Attr)
	if len(parentVals) == 0 {
		return olap.Constraint{}, false
	}
	ppath, ok := e.graph.PathFromFact(parent.Table, role)
	if !ok {
		return olap.Constraint{}, false
	}
	return olap.Constraint{Table: parent.Table, Attr: parent.Attr, Values: parentVals, Path: ppath}, true
}

// buildRollups produces one background space per hitted group by
// generalizing that group to the parent level of its hierarchy (§5.2.1's
// roll-up partitioning). When generalizing one level does not actually
// enlarge the subspace — the hit value is its parent's only child, like a
// state's single city — the roll-up climbs further, and a hit with no
// (remaining) hierarchy parent rolls all the way up by dropping its
// constraint.
func (e *Engine) buildRollups(sn *StarNet) []rollup {
	out, _ := e.buildRollupsCtx(context.Background(), sn)
	return out
}

// buildRollupsCtx is buildRollups under a cancellable context: each
// per-group semijoin and aggregate goes through the ctx-first executor
// entry points, so a cancelled explore stops between (or inside) the
// roll-up computations.
func (e *Engine) buildRollupsCtx(ctx context.Context, sn *StarNet) ([]rollup, error) {
	base := sn.Constraints() // merged: one constraint per attribute domain
	baseRows, err := e.subspaceRowsCtx(ctx, sn)
	if err != nil {
		if dr, ok := degradedRows(ctx, err); ok {
			baseRows = dr
		} else {
			return nil, err
		}
	}
	var out []rollup
	for i := range base {
		others := make([]olap.Constraint, 0, len(base))
		others = append(others, base[:i]...)
		others = append(others, base[i+1:]...)

		cur := base[i]
		role := cur.Path.Role
		var rows []int
		var key string
		for {
			gen, ok := e.generalizeConstraint(cur, role)
			var cs []olap.Constraint
			if ok {
				cs = append(append([]olap.Constraint(nil), others...), gen)
			} else {
				cs = others // top of the hierarchy: roll up to "all"
			}
			key = constraintsKey(cs, sn.Filters)
			rows, err = e.factRowsKeyed(ctx, key, cs, sn.Filters)
			if err != nil {
				if dr, ok := degradedRows(ctx, err); ok {
					rows = dr
				} else {
					return nil, err
				}
			}
			if !ok || len(rows) > len(baseRows) {
				break
			}
			// The parent level did not widen the space; climb further.
			cur = gen
		}
		if len(rows) == 0 {
			continue
		}
		agg, err := e.rollupAggregate(ctx, key, rows)
		if err != nil {
			return nil, err
		}
		out = append(out, rollup{dim: base[i].Path.Dim, rows: rows, agg: agg, key: key})
	}
	return out, nil
}

// constraintsKey renders the canonical identity of a constrained,
// filtered fact-row set — the cache and sharing key for roll-up spaces.
// Order-independent: constraint and filter parts are sorted.
func constraintsKey(cs []olap.Constraint, filters []NumericFilter) string {
	parts := make([]string, 0, len(cs)+len(filters))
	for _, c := range cs {
		vals := make([]string, len(c.Values))
		for i, v := range c.Values {
			vals[i] = v.Text()
		}
		sort.Strings(vals)
		parts = append(parts, c.Table+"."+c.Attr+"["+c.Path.Role+"]{"+strings.Join(vals, "\x1e")+"}")
	}
	for _, nf := range filters {
		parts = append(parts, nf.String())
	}
	sort.Strings(parts)
	return "ru\x1f" + strings.Join(parts, "\x1f")
}

// rollupAggregate computes G(RUP) — through the batch scope when one is
// attached, so concurrent requests sharing a roll-up space aggregate it
// once.
func (e *Engine) rollupAggregate(ctx context.Context, key string, rows []int) (float64, error) {
	sc := scanScopeOf(ctx)
	if sc == nil {
		return e.exec.AggregateCtx(ctx, rows, e.measure, e.agg)
	}
	v, err := sc.do(ctx, "agg\x1f"+key, func(ctx context.Context) (any, error) {
		return e.exec.AggregateCtx(ctx, rows, e.measure, e.agg)
	})
	if err != nil {
		return 0, err
	}
	return v.(float64), nil
}

// modeScore converts a correlation into the mode's interestingness score:
// Equation 1 negates it for surprises; bellwethers use it directly.
func modeScore(corr float64, mode InterestMode) float64 {
	if mode == Surprise {
		return -corr
	}
	return corr
}

// minPartitionGroups is the smallest partition size whose correlation
// carries evidence: one or two categories correlate to 0 or ±1 trivially
// regardless of the data.
const minPartitionGroups = 3

// uninformativeScore ranks evidence-free partitions at the very bottom,
// below even perfectly-correlated (least interesting) real partitions.
const uninformativeScore = -1.5

// evidenceScore converts an aligned partition pair into the mode's
// interestingness score, sinking partitions too small to be informative.
func evidenceScore(x, y []float64, opts ExploreOptions) float64 {
	if len(x) < minPartitionGroups {
		return uninformativeScore
	}
	corr := stats.Pearson(x, y)
	if opts.RankCorrelation {
		corr = stats.Spearman(x, y)
	}
	if opts.CustomScore != nil {
		return opts.CustomScore(corr)
	}
	return modeScore(corr, opts.Mode)
}

// scoreAttr ranks one candidate group-by attribute by roll-up
// partitioning and, if it survives, organizes its instances. A nil facet
// with nil error means the attribute produced no informative partition;
// a non-nil error is a cancelled context.
func (e *Engine) scoreAttr(ctx context.Context, attr schemagraph.AttrRef, role string, rows []int,
	totalAgg float64, rollups []rollup, opts ExploreOptions) (*AttrFacet, error) {

	path, ok := e.graph.PathFromFact(attr.Table, role)
	if !ok {
		return nil, nil
	}
	col, ok := e.graph.DB().Table(attr.Table).Schema().Column(attr.Attr)
	if !ok {
		return nil, nil
	}
	numeric := col.Kind == relation.KindInt || col.Kind == relation.KindFloat
	if numeric {
		return e.scoreNumericAttr(ctx, attr, path, rows, totalAgg, rollups, opts)
	}
	return e.scoreCategoricalAttr(ctx, attr, path, rows, totalAgg, rollups, opts)
}

// groupBysOver runs the local group-by and every roll-up's group-by for
// one attribute. Outside a batch the calls fuse into one multi-row-set
// walk over the shared columns (olap.GroupByMultiCtx); inside a batch
// each roll-up scan goes through the scope, so concurrent requests that
// share a roll-up space compute its group-by once. Either way every
// per-set result is byte-identical to a solo GroupByCtx call.
func (e *Engine) groupBysOver(ctx context.Context, local []int, rollups []rollup, attr string,
	path schemagraph.JoinPath) (map[relation.Value]float64, []map[relation.Value]float64, error) {

	sc := scanScopeOf(ctx)
	if sc == nil {
		sets := make([][]int, 0, len(rollups)+1)
		sets = append(sets, local)
		for i := range rollups {
			sets = append(sets, rollups[i].rows)
		}
		res, err := e.exec.GroupByMultiCtx(ctx, sets, attr, path, e.measure, e.agg)
		if err != nil {
			return nil, nil, err
		}
		return res[0], res[1:], nil
	}
	lg, err := e.exec.GroupByCtx(ctx, local, attr, path, e.measure, e.agg)
	if err != nil {
		return nil, nil, err
	}
	bgs := make([]map[relation.Value]float64, len(rollups))
	for i := range rollups {
		ru := &rollups[i]
		key := "gb\x1f" + ru.key + "\x1f" + path.Role + "\x1f" + path.Source + "." + attr
		v, err := sc.do(ctx, key, func(ctx context.Context) (any, error) {
			return e.exec.GroupByCtx(ctx, ru.rows, attr, path, e.measure, e.agg)
		})
		if err != nil {
			return nil, nil, err
		}
		bgs[i] = v.(map[relation.Value]float64)
	}
	return lg, bgs, nil
}

// scoreCategoricalAttr applies Equation 1 over a categorical partition:
// correlate the DS' aggregate series with each roll-up's series over the
// categories present in DS', keep the worst (most interesting) score.
func (e *Engine) scoreCategoricalAttr(ctx context.Context, attr schemagraph.AttrRef, path schemagraph.JoinPath,
	rows []int, totalAgg float64, rollups []rollup, opts ExploreOptions) (*AttrFacet, error) {

	_, gsp := telemetry.StartSpan(ctx, "groupby_kernel")
	local, bgs, err := e.groupBysOver(ctx, rows, rollups, attr.Attr, path)
	gsp.End()
	if err != nil {
		return nil, err
	}
	if len(local) == 0 {
		return nil, nil
	}
	cats := make([]relation.Value, 0, len(local))
	for v := range local {
		cats = append(cats, v)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i].Compare(cats[j]) < 0 })
	x := make([]float64, len(cats))
	for i, c := range cats {
		x[i] = local[c]
	}

	_, csp := telemetry.StartSpan(ctx, "rollup_correlate")
	defer csp.End()
	best := math.Inf(-1)
	var bestRU *rollup
	var bestBG map[relation.Value]float64
	for i := range rollups {
		ru := &rollups[i]
		bg := bgs[i]
		y := make([]float64, len(cats))
		for j, c := range cats {
			y[j] = bg[c]
		}
		s := evidenceScore(x, y, opts)
		if s > best {
			best = s
			bestRU = ru
			bestBG = bg
		}
	}
	if bestRU == nil {
		return nil, nil
	}
	af := &AttrFacet{Attr: attr, Role: path.Role, Score: best}
	af.Instances = e.categoricalInstances(cats, local, bestBG, totalAgg, bestRU, opts)
	return af, nil
}

// categoricalInstances scores every category with Equation 2 and ranks:
// surprise mode by absolute deviation, bellwether mode by contribution.
// bg is the winning roll-up's background aggregate per category, passed
// down from the scoring loop so the group-by is not run twice.
func (e *Engine) categoricalInstances(cats []relation.Value, local, bg map[relation.Value]float64,
	totalAgg float64, ru *rollup, opts ExploreOptions) []Instance {

	out := make([]Instance, 0, len(cats))
	for _, c := range cats {
		var score float64
		if totalAgg != 0 && ru.agg != 0 {
			score = local[c]/totalAgg - bg[c]/ru.agg
		}
		out = append(out, Instance{
			Label:     c.Text(),
			Value:     c,
			Aggregate: local[c],
			Score:     score,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		var a, b float64
		if opts.Mode == Surprise {
			a, b = math.Abs(out[i].Score), math.Abs(out[j].Score)
		} else {
			a, b = out[i].Aggregate, out[j].Aggregate
		}
		if a != b {
			return a > b
		}
		return out[i].Label < out[j].Label
	})
	if len(out) > opts.TopKInstances {
		out = out[:opts.TopKInstances]
	}
	return out
}

// scoreNumericAttr bucketizes the numeric domain into basic intervals
// (§5.2.2), applies Equation 1 over the bucket series, then merges the
// basic intervals into display ranges with Algorithm 2.
func (e *Engine) scoreNumericAttr(ctx context.Context, attr schemagraph.AttrRef, path schemagraph.JoinPath,
	rows []int, totalAgg float64, rollups []rollup, opts ExploreOptions) (*AttrFacet, error) {

	_, nsp := telemetry.StartSpan(ctx, "numeric_series")
	localVals, err := e.exec.NumericSeriesCtx(ctx, rows, attr.Attr, path, e.measure)
	nsp.End()
	if err != nil {
		return nil, err
	}
	if len(localVals) == 0 {
		return nil, nil
	}
	// A numeric domain with no more distinct values than display ranges
	// is effectively categorical (a year column, a banded income level):
	// show the values themselves instead of fractional buckets.
	distinct := map[float64]bool{}
	for _, vm := range localVals {
		distinct[vm.Value] = true
		if len(distinct) > opts.DisplayIntervals {
			break
		}
	}
	if len(distinct) <= opts.DisplayIntervals {
		return e.scoreCategoricalAttr(ctx, attr, path, rows, totalAgg, rollups, opts)
	}
	iv := MakeIntervals(localVals, opts.Buckets)
	x := iv.AggregateSeries(localVals)

	_, csp := telemetry.StartSpan(ctx, "rollup_correlate")
	best := math.Inf(-1)
	var bestY []float64
	var bestRU *rollup
	for i := range rollups {
		ru := &rollups[i]
		bgVals, err := e.rollupSeries(ctx, ru, attr.Attr, path)
		if err != nil {
			csp.End()
			return nil, err
		}
		y := iv.AggregateSeries(bgVals)
		xo, yo := OccupiedSeries(x, y)
		s := evidenceScore(xo, yo, opts)
		if s > best {
			best = s
			bestY = y
			bestRU = ru
		}
	}
	csp.End()
	if bestRU == nil {
		return nil, nil
	}
	af := &AttrFacet{Attr: attr, Role: path.Role, Score: best, Numeric: true}
	af.Instances, err = e.numericInstances(ctx, iv, x, bestY, totalAgg, bestRU.agg, opts)
	if err != nil {
		return nil, err
	}
	return af, nil
}

// rollupSeries extracts a roll-up space's numeric series — through the
// batch scope when one is attached, sharing the extraction among
// concurrent requests over the same space.
func (e *Engine) rollupSeries(ctx context.Context, ru *rollup, attr string, path schemagraph.JoinPath) ([]olap.ValueMeasure, error) {
	sc := scanScopeOf(ctx)
	if sc == nil {
		return e.exec.NumericSeriesCtx(ctx, ru.rows, attr, path, e.measure)
	}
	key := "ns\x1f" + ru.key + "\x1f" + path.Role + "\x1f" + path.Source + "." + attr
	v, err := sc.do(ctx, key, func(ctx context.Context) (any, error) {
		return e.exec.NumericSeriesCtx(ctx, ru.rows, attr, path, e.measure)
	})
	if err != nil {
		return nil, err
	}
	return v.([]olap.ValueMeasure), nil
}

// numericInstances merges basic intervals into K display ranges and
// renders them as instances with Equation 2 scores over range sums.
func (e *Engine) numericInstances(ctx context.Context, iv Intervals, x, y []float64,
	totalAgg, ruAgg float64, opts ExploreOptions) ([]Instance, error) {

	cfg := AnnealConfig{
		K: opts.DisplayIntervals, L: opts.SkewLimit,
		N: opts.AnnealIters, AcceptProb: 0.25, Seed: opts.Seed,
	}
	_, asp := telemetry.StartSpan(ctx, "interval_anneal")
	res, err := MergeIntervalsCtx(ctx, x, y, cfg)
	asp.End()
	if err != nil {
		return nil, err
	}
	bounds := append(append([]int(nil), res.Splits...), len(x))
	prev := 0
	out := make([]Instance, 0, len(bounds))
	for _, b := range bounds {
		var xs, ys float64
		for i := prev; i < b; i++ {
			xs += x[i]
			ys += y[i]
		}
		var score float64
		if totalAgg != 0 && ruAgg != 0 {
			score = xs/totalAgg - ys/ruAgg
		}
		out = append(out, Instance{
			Label:     fmt.Sprintf("%s - %s", trimFloat(iv.Edges[prev]), trimFloat(iv.Edges[b])),
			Value:     relation.Null(),
			Lo:        iv.Edges[prev],
			Hi:        iv.Edges[b],
			Aggregate: xs,
			Score:     score,
		})
		prev = b
	}
	// Numeric ranges keep domain order for navigational access (§5.3.2's
	// first objective) rather than score order.
	if len(out) > opts.TopKInstances {
		out = out[:opts.TopKInstances]
	}
	return out, nil
}

// promotedFacet builds the facet for a hit attribute: always selected,
// instances are the hit values themselves (the user's entry point for
// drill-down and for resolving residual ambiguity, §5.2.1).
func (e *Engine) promotedFacet(ctx context.Context, attr schemagraph.AttrRef, bg *BoundGroup,
	rows []int, totalAgg float64, rollups []rollup, opts ExploreOptions) (*AttrFacet, error) {

	af := &AttrFacet{Attr: attr, Role: bg.Path.Role, Score: math.Inf(1), Promoted: true}
	var ru *rollup
	for i := range rollups {
		if rollups[i].dim == bg.Path.Dim {
			ru = &rollups[i]
			break
		}
	}
	var withRU []rollup
	if ru != nil {
		withRU = []rollup{*ru}
	}
	local, bgs, err := e.groupBysOver(ctx, rows, withRU, attr.Attr, bg.Path)
	if err != nil {
		return nil, err
	}
	var bgAgg map[relation.Value]float64
	if ru != nil {
		bgAgg = bgs[0]
	}
	for _, v := range bg.Group.Values() {
		inst := Instance{Label: v.Text(), Value: v, Aggregate: local[v]}
		if ru != nil && totalAgg != 0 && ru.agg != 0 {
			inst.Score = local[v]/totalAgg - bgAgg[v]/ru.agg
		}
		af.Instances = append(af.Instances, inst)
	}
	sort.SliceStable(af.Instances, func(i, j int) bool {
		if af.Instances[i].Aggregate != af.Instances[j].Aggregate {
			return af.Instances[i].Aggregate > af.Instances[j].Aggregate
		}
		return af.Instances[i].Label < af.Instances[j].Label
	})
	if len(af.Instances) > opts.TopKInstances {
		af.Instances = af.Instances[:opts.TopKInstances]
	}
	return af, nil
}

// Drill narrows the star net by one facet instance: a categorical
// instance adds (or refines) a constraint on its attribute, enabling the
// §3 navigational loop in which each instance is an entry point for
// drill-down. The returned net is independent of the original.
func (e *Engine) Drill(sn *StarNet, attr schemagraph.AttrRef, role string, value relation.Value) (*StarNet, error) {
	path, ok := e.graph.PathFromFact(attr.Table, role)
	if !ok {
		return nil, fmt.Errorf("kdap: cannot reach %s from the fact table", attr)
	}
	value, err := e.coerceValue(attr, value)
	if err != nil {
		return nil, err
	}
	hg := &HitGroup{
		Table: attr.Table,
		Attr:  attr.Attr,
		Hits:  []Hit{{Table: attr.Table, Attr: attr.Attr, Value: value, Score: 1}},
	}
	out := &StarNet{
		Query:   sn.Query,
		Groups:  append(append([]BoundGroup(nil), sn.Groups...), BoundGroup{Group: hg, Path: path}),
		Filters: sn.Filters,
		Score:   sn.Score,
	}
	return out, nil
}

// coerceValue converts a drill value to the attribute column's kind —
// callers arriving from rendered labels (the CLI, the HTTP API) hold
// strings even for numeric attributes shown categorically.
func (e *Engine) coerceValue(attr schemagraph.AttrRef, v relation.Value) (relation.Value, error) {
	t := e.graph.DB().Table(attr.Table)
	if t == nil {
		return relation.Value{}, fmt.Errorf("kdap: no table %q", attr.Table)
	}
	col, ok := t.Schema().Column(attr.Attr)
	if !ok {
		return relation.Value{}, fmt.Errorf("kdap: no attribute %s", attr)
	}
	if v.Kind() == col.Kind || v.IsNull() {
		return v, nil
	}
	if v.Kind() == relation.KindString {
		s := v.Str()
		switch col.Kind {
		case relation.KindInt:
			i, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return relation.Value{}, fmt.Errorf("kdap: %s expects an integer, got %q", attr, s)
			}
			return relation.Int(i), nil
		case relation.KindFloat:
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return relation.Value{}, fmt.Errorf("kdap: %s expects a number, got %q", attr, s)
			}
			return relation.Float(f), nil
		case relation.KindBool:
			b, err := strconv.ParseBool(s)
			if err != nil {
				return relation.Value{}, fmt.Errorf("kdap: %s expects a boolean, got %q", attr, s)
			}
			return relation.Bool(b), nil
		}
	}
	if v.Numeric() && col.Kind == relation.KindFloat {
		return relation.Float(v.AsFloat()), nil
	}
	if v.Kind() == relation.KindFloat && col.Kind == relation.KindInt && v.FloatVal() == math.Trunc(v.FloatVal()) {
		return relation.Int(int64(v.FloatVal())), nil
	}
	return relation.Value{}, fmt.Errorf("kdap: cannot use %s value for %s (%s column)", v.Kind(), attr, col.Kind)
}

// DrillRange narrows the star net to a numeric facet range [lo, hi) —
// the drill-down entry point for the numeric instances Algorithm 2
// produces. The range is closed on the right when hi equals the domain
// maximum, matching the bucketizer's convention, which DrillRange
// approximates by treating the bound as inclusive.
func (e *Engine) DrillRange(sn *StarNet, attr schemagraph.AttrRef, role string, lo, hi float64) (*StarNet, error) {
	if hi < lo {
		return nil, fmt.Errorf("kdap: empty range [%g, %g]", lo, hi)
	}
	mk := func(op FilterOp, v float64) (NumericFilter, error) {
		fact := e.graph.DB().Table(e.graph.FactTable())
		if attr.Table == fact.Name() {
			return NumericFilter{
				Raw:  fmt.Sprintf("%s%s%g", attr.Attr, op, v),
				Attr: attr, OnFact: true, Op: op, Value: v,
			}, nil
		}
		path, ok := e.graph.PathFromFact(attr.Table, role)
		if !ok {
			return NumericFilter{}, fmt.Errorf("kdap: cannot reach %s from the fact table", attr)
		}
		return NumericFilter{
			Raw:  fmt.Sprintf("%s%s%g", attr.Attr, op, v),
			Attr: attr, Role: role, Path: path, Op: op, Value: v,
		}, nil
	}
	geFilter, err := mk(OpGE, lo)
	if err != nil {
		return nil, err
	}
	leFilter, err := mk(OpLE, hi)
	if err != nil {
		return nil, err
	}
	out := &StarNet{
		Query:   sn.Query,
		Groups:  append([]BoundGroup(nil), sn.Groups...),
		Filters: append(append([]NumericFilter(nil), sn.Filters...), geFilter, leFilter),
		Score:   sn.Score,
	}
	return out, nil
}
