package kdapcore

import (
	"math"
	"testing"
	"testing/quick"

	"kdap/internal/stats"
)

func randSeries(seed uint64, n int) ([]float64, []float64) {
	rng := stats.NewRNG(seed)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 100
		y[i] = x[i]*0.7 + rng.Float64()*30 // correlated with noise
	}
	return x, y
}

func TestMergeSeries(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	got := mergeSeries(x, []int{2, 4})
	want := []float64{3, 7, 11}
	if len(got) != 3 {
		t.Fatalf("mergeSeries = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("mergeSeries = %v, want %v", got, want)
		}
	}
	// No splits: single total.
	if got := mergeSeries(x, nil); len(got) != 1 || got[0] != 21 {
		t.Errorf("no-split merge = %v", got)
	}
}

func TestValidSplits(t *testing.T) {
	cases := []struct {
		splits []int
		m      int
		l      float64
		want   bool
	}{
		{[]int{2, 4}, 6, 4, true},
		{[]int{0, 4}, 6, 4, false},  // zero-width first range
		{[]int{4, 4}, 6, 4, false},  // zero-width middle range
		{[]int{4, 2}, 6, 4, false},  // out of order
		{[]int{2, 6}, 6, 4, false},  // zero-width last range
		{[]int{1, 2}, 12, 4, false}, // widths 1,1,10 violate L=4
		{[]int{1, 2}, 12, 10, true},
		{nil, 5, 4, true}, // single range is trivially balanced
	}
	for _, c := range cases {
		if got := validSplits(c.splits, c.m, c.l); got != c.want {
			t.Errorf("validSplits(%v, m=%d, L=%g) = %v, want %v", c.splits, c.m, c.l, got, c.want)
		}
	}
}

func TestMergeIntervalsReducesError(t *testing.T) {
	x, y := randSeries(7, 40)
	cfg := DefaultAnnealConfig()
	cfg.K = 5
	res0 := MergeIntervals(x, y, AnnealConfig{K: 5, L: cfg.L, N: 0, AcceptProb: 0.25, Seed: 1})
	res := MergeIntervals(x, y, cfg)
	if res.ErrPct > res0.ErrPct+1e-9 {
		t.Errorf("annealing made things worse: start %.3f%%, end %.3f%%", res0.ErrPct, res.ErrPct)
	}
	if len(res.Splits) != 4 {
		t.Errorf("splits = %v, want 4 positions", res.Splits)
	}
	if !validSplits(res.Splits, 40, cfg.L) {
		t.Errorf("result violates constraint: %v", res.Splits)
	}
	if len(res.History) != cfg.N+1 {
		t.Errorf("history length = %d, want %d", len(res.History), cfg.N+1)
	}
	// History is the best-so-far error: non-increasing.
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]+1e-9 {
			t.Fatalf("best-so-far error increased at %d: %g -> %g", i, res.History[i-1], res.History[i])
		}
	}
}

func TestMergeIntervalsDeterministic(t *testing.T) {
	x, y := randSeries(11, 40)
	cfg := DefaultAnnealConfig()
	a := MergeIntervals(x, y, cfg)
	b := MergeIntervals(x, y, cfg)
	if a.Score != b.Score || a.ErrPct != b.ErrPct {
		t.Error("same seed diverged")
	}
	for i := range a.Splits {
		if a.Splits[i] != b.Splits[i] {
			t.Error("splits diverged")
		}
	}
}

func TestMergeIntervalsDegenerate(t *testing.T) {
	// K >= m: every basic interval stands alone; zero error.
	x, y := randSeries(3, 4)
	res := MergeIntervals(x, y, AnnealConfig{K: 10, L: 4, N: 50, AcceptProb: 0.25, Seed: 1})
	if res.ErrPct != 0 {
		t.Errorf("K>=m should be exact: %g%%", res.ErrPct)
	}
	if len(res.Splits) != 3 {
		t.Errorf("splits = %v", res.Splits)
	}
	// K = 1: single range, correlation of 1-point series is 0.
	res = MergeIntervals(x, y, AnnealConfig{K: 1, L: 4, N: 10, AcceptProb: 0.25, Seed: 1})
	if len(res.Splits) != 0 || res.Score != 0 {
		t.Errorf("K=1: %+v", res)
	}
	// Length mismatch panics.
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	MergeIntervals([]float64{1}, []float64{1, 2}, DefaultAnnealConfig())
}

// Property: for any series the final splits satisfy the L constraint and
// the best error never exceeds the starting (equal-width) error.
func TestMergeIntervalsInvariantsProperty(t *testing.T) {
	f := func(seed uint64, kRaw, mRaw uint8) bool {
		m := int(mRaw)%60 + 8
		k := int(kRaw)%6 + 2
		x, y := randSeries(seed, m)
		cfg := AnnealConfig{K: k, L: 4, N: 120, AcceptProb: 0.3, Seed: seed}
		res := MergeIntervals(x, y, cfg)
		if !validSplits(res.Splits, m, cfg.L) {
			return false
		}
		if len(res.Splits) != k-1 {
			return false
		}
		start := res.History[0]
		end := res.History[len(res.History)-1]
		return end <= start+1e-9 && !math.IsNaN(res.Score)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// With more iterations the achieved error is (weakly) better — the
// Figure 7/8 convergence shape.
func TestMergeIntervalsConvergenceShape(t *testing.T) {
	x, y := randSeries(99, 40)
	var prev float64 = math.Inf(1)
	for _, n := range []int{0, 25, 100, 400} {
		res := MergeIntervals(x, y, AnnealConfig{K: 5, L: 4, N: n, AcceptProb: 0.25, Seed: 5})
		if res.ErrPct > prev+1e-9 {
			t.Errorf("error increased with more iterations at N=%d: %g > %g", n, res.ErrPct, prev)
		}
		prev = res.ErrPct
	}
}
