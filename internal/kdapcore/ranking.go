package kdapcore

import (
	"math"
	"sort"
)

// RankMethod selects the star-net scoring formula. Standard is the
// paper's proposal (§4.4); the other three are the comparison methods of
// Figure 4.
type RankMethod int

const (
	// Standard is the paper's formula:
	//
	//	SCORE(SN,q) = Σ_HG [ Σ_h Sim(h.val,q) / (|HG|·(1+ln|HG|)) ] / |SN|²
	//
	// It averages hit similarity per group, penalizes large hit groups
	// (the "California Street" problem), and strongly prefers nets with
	// fewer hit groups, i.e. interpretations where several keywords land
	// in the same attribute instance ("San Jose" the city beats
	// "San Antonio"+"Jose").
	Standard RankMethod = iota
	// NoGroupNumNorm disables the |SN|² group-number normalization.
	NoGroupNumNorm
	// NoGroupSizeNorm disables the (1+ln|HG|) group-size normalization.
	NoGroupSizeNorm
	// Baseline directly averages the raw full-text scores of all hits in
	// the net, as in Hristidis et al. (the paper's baseline).
	Baseline
)

// String names the method as used in the Figure 4 legend.
func (m RankMethod) String() string {
	switch m {
	case Standard:
		return "standard"
	case NoGroupNumNorm:
		return "no-group-number-norm"
	case NoGroupSizeNorm:
		return "no-group-size-norm"
	case Baseline:
		return "baseline"
	default:
		return "unknown"
	}
}

// RankMethods lists all four methods in Figure 4 order.
var RankMethods = []RankMethod{Standard, NoGroupNumNorm, NoGroupSizeNorm, Baseline}

// scoreStarNet computes the ranking score of one star net under a method.
func scoreStarNet(sn *StarNet, m RankMethod) float64 {
	if len(sn.Groups) == 0 {
		return 0
	}
	switch m {
	case Baseline:
		// Direct average of the text engine's original scores — no group
		// structure, no phrase score update (the [15]-style baseline).
		var sum float64
		var n int
		for _, bg := range sn.Groups {
			for _, h := range bg.Group.Hits {
				sum += h.RawScore
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	default:
		var total float64
		for _, bg := range sn.Groups {
			hg := bg.Group
			if len(hg.Hits) == 0 {
				continue
			}
			gs := hg.SumScore() / float64(len(hg.Hits)) // average similarity
			if m != NoGroupSizeNorm {
				gs /= 1 + math.Log(float64(len(hg.Hits)))
			}
			total += gs
		}
		if m != NoGroupNumNorm {
			total /= float64(len(sn.Groups) * len(sn.Groups))
		}
		return total
	}
}

// rankStarNets scores and sorts nets in place, descending. The scoring
// formula sees only hit groups, so nets that differ solely in join paths
// tie; ties break toward smaller join networks (the DISCOVER/DBXplorer
// heuristic the paper builds on) and then deterministically by signature.
func rankStarNets(nets []*StarNet, m RankMethod) {
	for _, sn := range nets {
		sn.Score = scoreStarNet(sn, m)
	}
	sort.SliceStable(nets, func(i, j int) bool {
		if nets[i].Score != nets[j].Score {
			return nets[i].Score > nets[j].Score
		}
		if a, b := nets[i].pathLen(), nets[j].pathLen(); a != b {
			return a < b
		}
		return nets[i].Signature() < nets[j].Signature()
	})
}
