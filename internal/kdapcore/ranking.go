package kdapcore

import (
	"math"
	"sort"

	"kdap/internal/schemagraph"
)

// RankMethod selects the star-net scoring formula. Standard is the
// paper's proposal (§4.4); the other three are the comparison methods of
// Figure 4.
type RankMethod int

const (
	// Standard is the paper's formula:
	//
	//	SCORE(SN,q) = Σ_HG [ Σ_h Sim(h.val,q) / (|HG|·(1+ln|HG|)) ] / |SN|²
	//
	// It averages hit similarity per group, penalizes large hit groups
	// (the "California Street" problem), and strongly prefers nets with
	// fewer hit groups, i.e. interpretations where several keywords land
	// in the same attribute instance ("San Jose" the city beats
	// "San Antonio"+"Jose").
	Standard RankMethod = iota
	// NoGroupNumNorm disables the |SN|² group-number normalization.
	NoGroupNumNorm
	// NoGroupSizeNorm disables the (1+ln|HG|) group-size normalization.
	NoGroupSizeNorm
	// Baseline directly averages the raw full-text scores of all hits in
	// the net, as in Hristidis et al. (the paper's baseline).
	Baseline
)

// String names the method as used in the Figure 4 legend.
func (m RankMethod) String() string {
	switch m {
	case Standard:
		return "standard"
	case NoGroupNumNorm:
		return "no-group-number-norm"
	case NoGroupSizeNorm:
		return "no-group-size-norm"
	case Baseline:
		return "baseline"
	default:
		return "unknown"
	}
}

// RankMethods lists all four methods in Figure 4 order.
var RankMethods = []RankMethod{Standard, NoGroupNumNorm, NoGroupSizeNorm, Baseline}

// scoreStarNet computes the ranking score of one star net under a method.
func scoreStarNet(sn *StarNet, m RankMethod) float64 {
	if len(sn.Groups) == 0 {
		return 0
	}
	switch m {
	case Baseline:
		// Direct average of the text engine's original scores — no group
		// structure, no phrase score update (the [15]-style baseline).
		var sum float64
		var n int
		for _, bg := range sn.Groups {
			for _, h := range bg.Group.Hits {
				sum += h.RawScore
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	default:
		var total float64
		for _, bg := range sn.Groups {
			hg := bg.Group
			if len(hg.Hits) == 0 {
				continue
			}
			gs := hg.SumScore() / float64(len(hg.Hits)) // average similarity
			if m != NoGroupSizeNorm {
				gs /= 1 + math.Log(float64(len(hg.Hits)))
			}
			total += gs
		}
		if m != NoGroupNumNorm {
			total /= float64(len(sn.Groups) * len(sn.Groups))
		}
		return total
	}
}

// Analytic tiers for the schema-aware tie-break: attributes inside a
// declared dimension hierarchy, then attributes that are merely
// group-by candidates, then attributes that are neither — descriptive
// text columns like a customer's first name. Levels within one
// hierarchy deliberately share a tier: "Hamburg" the city versus
// "Hamburg" the state province is a genuine ambiguity the later
// deterministic tie-breaks settle, not a structural one.
const (
	tierHierarchy = iota
	tierGroupByOnly
	tierUnstructured
)

// analyticTier rates how analytic one hit group's attribute domain is.
// A keyword like "Sydney" hits both DimGeography.City and
// DimCustomer.FirstName with the exact same text similarity; the
// scoring formula cannot separate them, but the schema can — City is a
// declared hierarchy level the user can roll up and drill along,
// FirstName is free text that happens to be indexed.
func analyticTier(g *schemagraph.Graph, bg *BoundGroup) int {
	attr := schemagraph.AttrRef{Table: bg.Group.Table, Attr: bg.Group.Attr}
	tier := tierUnstructured
	for _, d := range g.Dimensions() {
		for _, h := range d.Hierarchies {
			for _, a := range h.Levels {
				if a == attr {
					return tierHierarchy
				}
			}
		}
		for _, a := range d.GroupBy {
			if a == attr {
				tier = tierGroupByOnly
			}
		}
	}
	return tier
}

// analyticTierSum is the net's structural tie-break key: the sum of its
// groups' tiers, smaller = more analytically structured interpretation.
func analyticTierSum(g *schemagraph.Graph, sn *StarNet) int {
	sum := 0
	for i := range sn.Groups {
		sum += analyticTier(g, &sn.Groups[i])
	}
	return sum
}

// distinctDomains counts the distinct attribute domains the net's hit
// groups bind. When "Brakes Chains" can read as two subcategories or as
// a product name plus a subcategory at the same score, the coherent
// reading — both keywords naming instances of one domain — is the
// analytical intent more often than a mixed binding.
func distinctDomains(sn *StarNet) int {
	seen := make(map[string]bool, len(sn.Groups))
	for i := range sn.Groups {
		seen[sn.Groups[i].Group.Domain()] = true
	}
	return len(seen)
}

// rankStarNets scores and sorts nets in place, descending. The scoring
// formula sees only hit groups, so nets whose hits carry equal text
// similarity tie exactly; ties break first toward interpretations over
// analytically structured domains (hierarchy levels beat bare group-by
// candidates beat descriptive text columns — the KDAP premise that
// keywords name analysis subjects, §4.4), then toward domain-coherent
// readings (fewer distinct attribute domains), then toward smaller join
// networks (the DISCOVER/DBXplorer heuristic the paper builds on), and
// last deterministically by signature. The tier outranks path length
// because the two disagree exactly when a descriptive column sits
// closer to the fact table than the hierarchy it shadows ("Sydney" the
// customer first name is one join nearer than "Sydney" the city), and
// preferring the shorter join there picks the non-analytic reading.
func rankStarNets(g *schemagraph.Graph, nets []*StarNet, m RankMethod) {
	for _, sn := range nets {
		sn.Score = scoreStarNet(sn, m)
	}
	sort.SliceStable(nets, func(i, j int) bool {
		if nets[i].Score != nets[j].Score {
			return nets[i].Score > nets[j].Score
		}
		if a, b := analyticTierSum(g, nets[i]), analyticTierSum(g, nets[j]); a != b {
			return a < b
		}
		if a, b := distinctDomains(nets[i]), distinctDomains(nets[j]); a != b {
			return a < b
		}
		if a, b := nets[i].pathLen(), nets[j].pathLen(); a != b {
			return a < b
		}
		return nets[i].Signature() < nets[j].Signature()
	})
}
