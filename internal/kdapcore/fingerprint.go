package kdapcore

import (
	"bytes"
	"fmt"
	"strconv"
)

// Fingerprint returns a canonical byte encoding of the facets. Every
// float is rendered in hexadecimal form, so ±Inf, NaN, and last-bit
// differences all surface — unlike the JSON the HTTP layer emits, which
// sanitizes non-finite scores. Two Facets fingerprint equal iff a user
// could not tell them apart by any field; the equivalence suites use it
// to hold the sharded executor to byte-identical output against the
// monolithic scan.
func (f *Facets) Fingerprint() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "rows=%d agg=%s partial=%v",
		f.SubspaceSize, hexFloat(f.TotalAggregate), f.Partial)
	if len(f.DegradedNodes) > 0 {
		fmt.Fprintf(&b, " degraded=%v", f.DegradedNodes)
	}
	b.WriteByte('\n')
	for _, d := range f.Dimensions {
		fmt.Fprintf(&b, "dim %s hitted=%v\n", d.Dimension, d.Hitted)
		for _, a := range d.Attributes {
			fmt.Fprintf(&b, " attr %s role=%s score=%s promoted=%v numeric=%v\n",
				a.Attr, a.Role, hexFloat(a.Score), a.Promoted, a.Numeric)
			for _, in := range a.Instances {
				fmt.Fprintf(&b, "  %q value=%s lo=%s hi=%s agg=%s score=%s\n",
					in.Label, in.Value.GoString(), hexFloat(in.Lo), hexFloat(in.Hi),
					hexFloat(in.Aggregate), hexFloat(in.Score))
			}
		}
	}
	return b.Bytes()
}

// hexFloat renders a float exactly: hexadecimal mantissa/exponent for
// finite values, "+Inf"/"-Inf"/"NaN" otherwise.
func hexFloat(x float64) string { return strconv.FormatFloat(x, 'x', -1, 64) }
