package kdapcore

import (
	"fmt"
	"math"
	"sort"

	"kdap/internal/olap"
)

// Intervals is an equal-width bucketization of a numeric attribute domain:
// the "basic intervals" of §5.2.2. Edges has len(Buckets)+1 entries; bucket
// i covers [Edges[i], Edges[i+1]) with the last bucket closed on the right.
type Intervals struct {
	Edges []float64
}

// Buckets returns the number of basic intervals.
func (iv Intervals) Buckets() int { return len(iv.Edges) - 1 }

// Find returns the bucket index containing v, or -1 when v is outside the
// domain.
func (iv Intervals) Find(v float64) int {
	n := iv.Buckets()
	if n <= 0 || v < iv.Edges[0] || v > iv.Edges[n] {
		return -1
	}
	if v == iv.Edges[n] {
		return n - 1
	}
	i := sort.SearchFloat64s(iv.Edges, v)
	// SearchFloat64s returns the first edge >= v; bucket is the one to
	// the left unless v sits exactly on an edge.
	if i < len(iv.Edges) && iv.Edges[i] == v {
		return i
	}
	return i - 1
}

// Label renders bucket i the way the paper's Table 2 shows numeric
// categories ("323 - 470").
func (iv Intervals) Label(i int) string {
	return fmt.Sprintf("%s - %s", trimFloat(iv.Edges[i]), trimFloat(iv.Edges[i+1]))
}

func trimFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%.2f", f)
}

// MakeIntervals builds n equal-width basic intervals spanning the value
// range of vals. A degenerate domain (all values equal, or empty) yields a
// single bucket.
func MakeIntervals(vals []olap.ValueMeasure, n int) Intervals {
	if len(vals) == 0 {
		return Intervals{Edges: []float64{0, 0}}
	}
	lo, hi := vals[0].Value, vals[0].Value
	for _, vm := range vals[1:] {
		if vm.Value < lo {
			lo = vm.Value
		}
		if vm.Value > hi {
			hi = vm.Value
		}
	}
	if lo == hi || n < 1 {
		return Intervals{Edges: []float64{lo, hi}}
	}
	edges := make([]float64, n+1)
	w := (hi - lo) / float64(n)
	for i := 0; i <= n; i++ {
		edges[i] = lo + float64(i)*w
	}
	edges[n] = hi // guard against floating-point drift
	return Intervals{Edges: edges}
}

// MakeDistinctIntervals builds one bucket per distinct value — the ground
// truth of §6.4, "each distinct value from the subspace has its own
// bucket". Edges fall halfway between consecutive distinct values.
func MakeDistinctIntervals(vals []olap.ValueMeasure) Intervals {
	if len(vals) == 0 {
		return Intervals{Edges: []float64{0, 0}}
	}
	seen := map[float64]bool{}
	var distinct []float64
	for _, vm := range vals {
		if !seen[vm.Value] {
			seen[vm.Value] = true
			distinct = append(distinct, vm.Value)
		}
	}
	sort.Float64s(distinct)
	if len(distinct) == 1 {
		return Intervals{Edges: []float64{distinct[0], distinct[0]}}
	}
	edges := make([]float64, 0, len(distinct)+1)
	edges = append(edges, distinct[0])
	for i := 1; i < len(distinct); i++ {
		edges = append(edges, (distinct[i-1]+distinct[i])/2)
	}
	edges = append(edges, distinct[len(distinct)-1])
	return Intervals{Edges: edges}
}

// OccupiedSeries reduces two aligned bucket series to the partition over
// DOM(DS', attr): the paper's PAR(DS', attr) ranges only over attribute
// values present in the sub-dataspace, so buckets that no DS' tuple falls
// into are not categories of the partition. Their roll-up mass is not
// dropped, though — a background tuple belongs to the category whose
// interval covers it, so each unoccupied bucket's y mass folds into the
// nearest occupied bucket (ties toward the left neighbor). This makes the
// equal-width partition converge to the distinct-value ground truth as
// the bucket count grows.
func OccupiedSeries(x, y []float64) (xs, ys []float64) {
	if len(x) != len(y) {
		panic("kdapcore: OccupiedSeries length mismatch")
	}
	var occupied []int
	for i := range x {
		if x[i] != 0 {
			occupied = append(occupied, i)
		}
	}
	if len(occupied) == 0 {
		return nil, nil
	}
	xs = make([]float64, len(occupied))
	ys = make([]float64, len(occupied))
	for k, i := range occupied {
		xs[k] = x[i]
		ys[k] = y[i]
	}
	// Fold unoccupied buckets' background mass into the nearest occupied
	// bucket.
	for i := range x {
		if x[i] != 0 || y[i] == 0 {
			continue
		}
		nearest, best := 0, -1
		for j, oi := range occupied {
			d := oi - i
			if d < 0 {
				d = -d
			}
			if best < 0 || d < best {
				best = d
				nearest = j
			}
		}
		ys[nearest] += y[i]
	}
	return xs, ys
}

// AggregateSeries sums the measure of vals per basic interval, producing
// the aggregation-value series the correlation score consumes. Values
// outside the interval domain are dropped (they belong to the roll-up
// space but not to the sub-dataspace's domain, per §5.2.1's
// PAR(RUP(DS'), attr) restriction).
func (iv Intervals) AggregateSeries(vals []olap.ValueMeasure) []float64 {
	out := make([]float64, iv.Buckets())
	if len(out) == 0 {
		return out
	}
	for _, vm := range vals {
		if b := iv.Find(vm.Value); b >= 0 {
			out[b] += vm.Measure
		}
	}
	return out
}
