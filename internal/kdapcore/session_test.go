package kdapcore

import (
	"testing"

	"kdap/internal/relation"
	"kdap/internal/schemagraph"
)

func newSession(t *testing.T) *Session {
	t.Helper()
	return NewSession(ebizEngine(), DefaultExploreOptions())
}

func TestSessionFullLoop(t *testing.T) {
	s := newSession(t)
	if s.Current() != nil || s.Facets() != nil || s.Depth() != 0 {
		t.Fatal("fresh session not empty")
	}
	nets, err := s.Query("Columbus LCD")
	if err != nil || len(nets) == 0 {
		t.Fatalf("query: %v", err)
	}
	if len(s.Interpretations()) != len(nets) {
		t.Error("interpretations not stored")
	}
	f, err := s.Pick(1)
	if err != nil || f == nil || s.Facets() != f {
		t.Fatalf("pick: %v", err)
	}
	before := f.SubspaceSize

	// Drill into the first categorical instance.
	var drilled *Facets
	for _, a := range s.FlatAttrs() {
		if a.Numeric || len(a.Instances) == 0 || a.Instances[0].Value.IsNull() {
			continue
		}
		drilled, err = s.Drill(a.Attr, a.Role, a.Instances[0].Value)
		if err != nil {
			t.Fatalf("drill: %v", err)
		}
		break
	}
	if drilled == nil {
		t.Fatal("nothing drilled")
	}
	if s.Depth() != 1 || drilled.SubspaceSize > before {
		t.Errorf("depth %d, sizes %d -> %d", s.Depth(), before, drilled.SubspaceSize)
	}
	back, err := s.Back()
	if err != nil || back.SubspaceSize != before || s.Depth() != 0 {
		t.Errorf("back: %v size %d", err, back.SubspaceSize)
	}
	if _, err := s.Back(); err == nil {
		t.Error("back at root accepted")
	}
}

func TestSessionModeSwitchRebuildsFacets(t *testing.T) {
	s := newSession(t)
	if err := s.SetMode(Bellwether); err != nil {
		t.Fatal(err) // no facets yet: just records the mode
	}
	if _, err := s.Query("Projectors"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Pick(1); err != nil {
		t.Fatal(err)
	}
	f1 := s.Facets()
	if err := s.SetMode(Surprise); err != nil {
		t.Fatal(err)
	}
	if s.Facets() == f1 {
		t.Error("mode switch did not rebuild facets")
	}
}

func TestSessionErrors(t *testing.T) {
	s := newSession(t)
	if _, err := s.Pick(1); err == nil {
		t.Error("pick before query accepted")
	}
	if _, err := s.Query("   "); err == nil {
		t.Error("blank query accepted")
	}
	if _, err := s.Drill(schemagraph.AttrRef{Table: "LOC", Attr: "City"}, "Store", relation.String("Columbus")); err == nil {
		t.Error("drill before pick accepted")
	}
	nets, _ := s.Query("Projectors")
	if len(nets) == 0 {
		t.Fatal("no nets")
	}
	if _, err := s.Pick(999); err == nil {
		t.Error("out-of-range pick accepted")
	}
	if _, err := s.Pick(1); err != nil {
		t.Fatal(err)
	}
	// A drill into a nonexistent value empties the subspace and must
	// leave the session usable at the previous state.
	before := s.Facets().SubspaceSize
	if _, err := s.Drill(schemagraph.AttrRef{Table: "LOC", Attr: "City"}, "Store", relation.String("Atlantis")); err == nil {
		t.Error("empty drill accepted")
	}
	if s.Depth() != 0 || s.Facets() == nil || s.Facets().SubspaceSize != before {
		t.Error("failed drill corrupted the session")
	}
}

// With tracing on, every query and explore-refreshing navigation step
// publishes a span tree through LastTrace; with it off (the default),
// nothing is recorded.
func TestSessionTracing(t *testing.T) {
	s := newSession(t)
	if s.Tracing() || s.LastTrace() != nil {
		t.Fatal("tracing on by default")
	}
	if _, err := s.Query("Columbus LCD"); err != nil {
		t.Fatal(err)
	}
	if s.LastTrace() != nil {
		t.Error("untraced query recorded a trace")
	}

	s.SetTracing(true)
	if _, err := s.Query("Columbus LCD"); err != nil {
		t.Fatal(err)
	}
	qt := s.LastTrace()
	if qt == nil || qt.Root().Name() != "query" {
		t.Fatalf("query trace: %+v", qt)
	}
	if st := qt.Stages(); st["differentiate"] == 0 || st["hit_probe"] == 0 {
		t.Errorf("query stages missing: %v", qt.StageNames())
	}

	if _, err := s.Pick(1); err != nil {
		t.Fatal(err)
	}
	et := s.LastTrace()
	if et == qt || et.Root().Name() != "explore" {
		t.Fatalf("pick did not publish an explore trace")
	}
	if st := et.Stages(); st["subspace_semijoin"] == 0 || st["facet_score"] == 0 {
		t.Errorf("explore stages missing: %v", et.StageNames())
	}
}
