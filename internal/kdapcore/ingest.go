package kdapcore

// Streaming ingest with incremental maintenance. AppendFacts is the
// engine's single writer entry point: it appends a batch of fact rows
// through relation.Table.AppendFacts (resident or disk-backed tail
// segments alike), widens the shard partition, indexes any new
// full-text values the batch introduced, and then invalidates cached
// answers with *delta scope* — only answers whose sub-dataspace or
// roll-up background spaces could contain an appended row are evicted;
// everything else keeps serving from cache.
//
// Consistency model (per-scan prefix consistency):
//
//   - Readers never block on an append and never see torn rows: every
//     scan covers at least the fact length published when it started,
//     and derived structures (constraint bitsets, code vectors, zone
//     maps, materialized row sets) extend lazily to whatever length a
//     scan observes — they are never rebuilt and never shrink.
//   - A query that raced an append may answer from either side of it.
//     What cannot happen is a *cached* stale answer surviving rows that
//     affect it: the eviction predicate is recorded by the answer store
//     (cache.Answers.EvictIf), so even an in-flight computation that
//     began before the append cannot publish a pre-append answer for an
//     affected key afterwards.
//   - Appends are serialized by ingestMu; concurrency is between the
//     one writer and many readers, never writer/writer.
//
// Invalidation rules:
//
//   - Explore answers: the answer for key k (net sn) depends on the
//     rows of its subspace (filters ∧ all constraints) and of each
//     roll-up background space. Every such space is contained in some
//     "drop one constraint" variant (filters ∧ ⋀_{j≠i} c_j), so k is
//     evicted iff some variant admits an appended row. Keys whose
//     provenance is unknown (evicted from the exploreDeps registry) are
//     evicted conservatively.
//   - Differentiate answers: they depend only on the schema graph and
//     the full-text index, so they are evicted only when the batch
//     added new postings (new values in fact full-text columns) —
//     never on a plain measure append.
//   - Materialized row sets (rowsCache) are not evicted at all: each
//     entry records its coverage and extends itself over the appended
//     range at next fetch (engine.go).

import (
	"context"
	"sync"

	"kdap/internal/fulltext"
	"kdap/internal/olap"
	"kdap/internal/relation"
	"kdap/internal/telemetry"
)

// AppendResult summarizes one accepted ingest batch.
type AppendResult struct {
	// Start is the fact row ID of the first appended row; the batch
	// occupies [Start, Start+Rows).
	Start int `json:"start"`
	// Rows is the number of rows appended.
	Rows int `json:"rows"`
	// NewTerms counts full-text terms first seen in this batch.
	NewTerms int `json:"new_terms,omitempty"`
	// EvictedExplore and EvictedDiff count answer-cache entries retired
	// because the batch intersects their dependency scope.
	EvictedExplore int `json:"evicted_explore"`
	EvictedDiff    int `json:"evicted_diff"`
	// KeptExplore counts explore answers that survived the append —
	// the delta-invalidation win over a global cache nuke.
	KeptExplore int `json:"kept_explore"`
}

// IngestStats is a point-in-time snapshot of the engine's ingest
// counters, mirrored as kdap_ingest_* metrics by the HTTP layer.
type IngestStats struct {
	Batches        int64
	Rows           int64
	NewTerms       int64
	EvictedAnswers int64
	KeptAnswers    int64
}

// IngestStats snapshots the ingest counters.
func (e *Engine) IngestStats() IngestStats {
	return IngestStats{
		Batches:        e.ingestBatches.Load(),
		Rows:           e.ingestRows.Load(),
		NewTerms:       e.ingestTerms.Load(),
		EvictedAnswers: e.ingestEvicted.Load(),
		KeptAnswers:    e.ingestKept.Load(),
	}
}

// IngestSeq returns the number of accepted append batches. It advances
// after each batch's eviction pass and participates in HTTP ETags:
// client-side revalidation is conservative (any append retires every
// conditional tag), while the server-side answer cache stays
// delta-scoped.
func (e *Engine) IngestSeq() uint64 { return e.ingestSeq.Load() }

// AppendFacts appends a batch of fact rows and incrementally maintains
// everything derived from the fact table. Values must match the fact
// schema (ints widen into float columns); the whole batch is rejected
// on the first invalid row, before any row lands. Safe to call
// concurrently with queries; concurrent AppendFacts calls serialize.
func (e *Engine) AppendFacts(ctx context.Context, rows [][]relation.Value) (AppendResult, error) {
	if len(rows) == 0 {
		return AppendResult{}, nil
	}
	ctx, root := telemetry.StartSpan(ctx, "ingest_append")
	defer root.End()

	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()

	fact := e.graph.DB().Table(e.graph.FactTable())
	lo := fact.Len()
	_, sp := telemetry.StartSpan(ctx, "append_rows")
	start, err := fact.AppendFacts(rows)
	sp.End()
	if err != nil {
		return AppendResult{}, err
	}
	hi := fact.Len()
	res := AppendResult{Start: start, Rows: hi - lo}

	// Widen the shard partition's last shard over the appended rows
	// (no-op when unsharded); plans over the old partition stay valid.
	e.exec.ExtendForAppend(hi)

	_, sp = telemetry.StartSpan(ctx, "index_terms")
	res.NewTerms = e.indexAppendedValues(fact, rows)
	sp.End()

	_, sp = telemetry.StartSpan(ctx, "evict_answers")
	res.EvictedExplore, res.EvictedDiff, res.KeptExplore = e.evictForAppend(lo, hi, res.NewTerms > 0)
	sp.End()

	e.ingestSeq.Add(1)
	e.ingestBatches.Add(1)
	e.ingestRows.Add(int64(res.Rows))
	e.ingestTerms.Add(int64(res.NewTerms))
	e.ingestEvicted.Add(int64(res.EvictedExplore + res.EvictedDiff))
	e.ingestKept.Add(int64(res.KeptExplore))
	return res, nil
}

// indexAppendedValues feeds the batch's full-text values into the
// index (Add is a dedup no-op for known values) and refreshes segment
// skip hints for every value the batch touched — a known value landing
// in a fresh tail segment needs its hint to cover that segment too.
// Returns the number of new terms. Engines over facts without
// full-text columns (the AW warehouses) skip all of it.
func (e *Engine) indexAppendedValues(fact *relation.Table, rows [][]relation.Value) int {
	ftCols := fact.Schema().FullTextColumns()
	if len(ftCols) == 0 || e.index == nil {
		return 0
	}
	segmenter, _ := fact.Backing().(relation.TermSegmenter)
	before := e.index.TermCount()
	for _, col := range ftCols {
		ci := fact.Schema().ColumnIndex(col)
		seen := make(map[relation.Value]bool)
		for _, row := range rows {
			v := row[ci]
			if v.IsNull() || seen[v] {
				continue
			}
			seen[v] = true
			e.index.Add(fact.Name(), col, v)
			if segmenter != nil {
				if segs, ok := segmenter.ValueSegments(col, v); ok {
					e.index.AddDocSegments(fulltext.Doc{Table: fact.Name(), Attr: col, Value: v}, segs)
				}
			}
		}
	}
	return e.index.TermCount() - before
}

// evictForAppend retires exactly the cached answers the appended row
// range [lo, hi) can affect. kept reports how many explore answers
// survived.
func (e *Engine) evictForAppend(lo, hi int, newTerms bool) (expl, diff, kept int) {
	if e.explAnswers == nil {
		return 0, 0, 0
	}
	before := e.explAnswers.Len()
	expl = e.explAnswers.EvictIf(e.appendEvictionPred(lo, hi))
	kept = before - expl
	if newTerms {
		// New postings can change hit sets and therefore every
		// differentiate answer; plain measure appends change none.
		diff = e.diffAnswers.EvictIf(func(string) bool { return true })
	}
	return expl, diff, kept
}

// appendEvictionPred builds the delta-scope predicate for one appended
// row range. The predicate is memoized per key because the answer
// store re-applies it to late puts from computations that began before
// the append (cache.Answers); the decision is deterministic either
// way, the memo just skips repeat bitset walks.
func (e *Engine) appendEvictionPred(lo, hi int) func(key string) bool {
	var mu sync.Mutex
	memo := make(map[string]bool)
	return func(key string) bool {
		mu.Lock()
		v, ok := memo[key]
		mu.Unlock()
		if ok {
			return v
		}
		v = e.appendTouchesKey(key, lo, hi)
		mu.Lock()
		memo[key] = v
		mu.Unlock()
		return v
	}
}

// appendTouchesKey decides whether rows [lo, hi) can affect the explore
// answer stored under key. Unknown provenance evicts conservatively.
func (e *Engine) appendTouchesKey(key string, lo, hi int) bool {
	sn, ok := e.exploreDeps.Get(key)
	if !ok {
		return true
	}
	return e.appendIntersects(context.Background(), sn, lo, hi)
}

// appendIntersects reports whether any appended row falls inside the
// net's dependency scope: its subspace or any roll-up background
// space. Each roll-up space — however far buildRollupsCtx climbed the
// hierarchy — is contained in the "drop one constraint" variant of its
// group, and the subspace is contained in every variant, so checking
// the variants (under the net's filters) covers the whole scope. With
// no constraints the scope is the filtered dataspace itself. Errors
// evict conservatively — a failed proof of disjointness is not one.
func (e *Engine) appendIntersects(ctx context.Context, sn *StarNet, lo, hi int) bool {
	base := sn.Constraints()
	variants := make([][]olap.Constraint, 0, len(base)+1)
	if len(base) == 0 {
		variants = append(variants, nil)
	}
	for i := range base {
		others := make([]olap.Constraint, 0, len(base)-1)
		others = append(others, base[:i]...)
		others = append(others, base[i+1:]...)
		variants = append(variants, others)
	}
	for _, cs := range variants {
		rows, err := e.exec.FactRowsInRange(ctx, cs, lo, hi)
		if err != nil {
			return true
		}
		if len(rows) == 0 {
			continue
		}
		if len(sn.Filters) > 0 {
			rows, err = e.applyFiltersCtx(ctx, rows, sn.Filters)
			if err != nil {
				return true
			}
		}
		if len(rows) > 0 {
			return true
		}
	}
	return false
}
