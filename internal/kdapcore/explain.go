package kdapcore

import (
	"fmt"
	"math"
	"strings"
)

// GroupExplanation breaks one hit group's contribution to the §4.4
// ranking score into its factors.
type GroupExplanation struct {
	Domain string
	Role   string
	// Hits is |HG|, the group size.
	Hits int
	// SumSim and AvgSim aggregate the hits' Sim(h, q) values.
	SumSim float64
	AvgSim float64
	// SizeNorm is the 1 + ln|HG| divisor penalizing broad groups.
	SizeNorm float64
	// Contribution = AvgSim / SizeNorm, the group's term in the sum.
	Contribution float64
	// Phrase is set for merged phrase groups.
	Phrase string
}

// Explanation decomposes a star net's standard ranking score.
type Explanation struct {
	Signature string
	Groups    []GroupExplanation
	// GroupSum is Σ contributions before group-number normalization.
	GroupSum float64
	// NumNorm is |SN|², the group-number divisor.
	NumNorm int
	// Score = GroupSum / NumNorm.
	Score float64
}

// Explain decomposes the net's standard-method score into the paper's
// formula components, for debugging rankings and for teaching the system
// ("why did San Jose the city beat San Antonio + Jose?").
func (sn *StarNet) Explain() Explanation {
	ex := Explanation{Signature: sn.DomainSignature(), NumNorm: len(sn.Groups) * len(sn.Groups)}
	for _, bg := range sn.Groups {
		hg := bg.Group
		ge := GroupExplanation{
			Domain: hg.Domain(),
			Role:   bg.Path.Role,
			Hits:   len(hg.Hits),
			SumSim: hg.SumScore(),
			Phrase: hg.Phrase,
		}
		if ge.Hits > 0 {
			ge.AvgSim = ge.SumSim / float64(ge.Hits)
			ge.SizeNorm = 1 + math.Log(float64(ge.Hits))
			ge.Contribution = ge.AvgSim / ge.SizeNorm
		}
		ex.GroupSum += ge.Contribution
		ex.Groups = append(ex.Groups, ge)
	}
	if ex.NumNorm > 0 {
		ex.Score = ex.GroupSum / float64(ex.NumNorm)
	}
	return ex
}

// String renders the explanation as an indented breakdown.
func (ex Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "score %.6f = %.6f / |SN|²=%d\n", ex.Score, ex.GroupSum, ex.NumNorm)
	for _, g := range ex.Groups {
		phrase := ""
		if g.Phrase != "" {
			phrase = fmt.Sprintf(" phrase=%q", g.Phrase)
		}
		fmt.Fprintf(&b, "  %s[%s]%s: |HG|=%d avgSim=%.4f sizeNorm=%.4f -> %.6f\n",
			g.Domain, g.Role, phrase, g.Hits, g.AvgSim, g.SizeNorm, g.Contribution)
	}
	return b.String()
}
