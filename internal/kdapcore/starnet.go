package kdapcore

import (
	"fmt"
	"sort"
	"strings"

	"kdap/internal/olap"
	"kdap/internal/relation"
	"kdap/internal/schemagraph"
)

// BoundGroup is a hit group bound to one concrete join path to the fact
// table. The pair fixes the semantic interpretation of the keywords the
// group covers (e.g. Loc/City/"Columbus" via the Store path vs. the Buyer
// path).
type BoundGroup struct {
	Group *HitGroup
	Path  schemagraph.JoinPath
}

// Alias returns the table expression name for this group in the star net:
// the bare table name, or Table@Role when the same table is reachable
// through several roles (the paper's table-alias requirement, §4.2).
func (b BoundGroup) Alias() string {
	if b.Path.Role == "" || b.Path.Role == b.Path.Dim {
		return b.Group.Table
	}
	return b.Group.Table + "@" + b.Path.Role
}

// StarNet is one candidate interpretation of the whole keyword query: a
// set of bound hit groups whose join paths all meet at the fact table
// (§4.2). The sub-dataspace DS' of the net is the intersection of its
// groups' fact-row slices.
type StarNet struct {
	Query  string
	Groups []BoundGroup
	// Filters are the query's numeric predicates (the §7 measure-
	// attribute extension); they further slice the sub-dataspace after
	// the hit-group semijoin.
	Filters []NumericFilter
	// Score is the ranking score assigned by the method used during
	// differentiation.
	Score float64
}

// pathLen is the total number of join hops in the net — the size of its
// join network.
func (sn *StarNet) pathLen() int {
	n := 0
	for _, bg := range sn.Groups {
		n += len(bg.Path.Hops)
	}
	return n
}

// Dimensions returns the distinct dimension names hit by the net — the
// paper's "hitted dimensions" D_hit (§5.2.1).
func (sn *StarNet) Dimensions() []string {
	seen := map[string]bool{}
	var out []string
	for _, bg := range sn.Groups {
		if bg.Path.Dim == "" || seen[bg.Path.Dim] {
			continue
		}
		seen[bg.Path.Dim] = true
		out = append(out, bg.Path.Dim)
	}
	sort.Strings(out)
	return out
}

// Constraints converts the net's bound groups into executor constraints.
// Groups from *different* attribute domains intersect at the fact table —
// the paper's "merge tables from the same dimension" semantics (the
// "Home Electronics, VCR" example slices products satisfying both).
// Groups from the *same* domain and join path are side-by-side slices
// (§4.3's "Software" + "Electronics" example) and union into one IN
// predicate: a fact cannot belong to two subcategories at once, so
// intersecting them would always be empty.
func (sn *StarNet) Constraints() []olap.Constraint {
	type key struct {
		table, attr, path string
	}
	index := make(map[key]int)
	out := make([]olap.Constraint, 0, len(sn.Groups))
	for _, bg := range sn.Groups {
		k := key{bg.Group.Table, bg.Group.Attr, bg.Path.Signature()}
		if i, ok := index[k]; ok {
			out[i].Values = unionValues(out[i].Values, bg.Group.Values())
			continue
		}
		index[k] = len(out)
		out = append(out, olap.Constraint{
			Table:  bg.Group.Table,
			Attr:   bg.Group.Attr,
			Values: bg.Group.Values(),
			Path:   bg.Path,
		})
	}
	return out
}

// unionValues appends the values of b not already in a.
func unionValues(a, b []relation.Value) []relation.Value {
	seen := make(map[relation.Value]bool, len(a))
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		if !seen[v] {
			seen[v] = true
			a = append(a, v)
		}
	}
	return a
}

// Signature canonically identifies the interpretation: the sorted set of
// (domain, role, sorted values) triples. Ground-truth checks in the
// Figure 4 reproduction match on it.
func (sn *StarNet) Signature() string {
	parts := make([]string, 0, len(sn.Groups))
	for _, bg := range sn.Groups {
		vals := make([]string, 0, len(bg.Group.Hits))
		for _, h := range bg.Group.Hits {
			vals = append(vals, h.Value.Text())
		}
		sort.Strings(vals)
		parts = append(parts, fmt.Sprintf("%s[%s]{%s}", bg.Group.Domain(), bg.Path.Role, strings.Join(vals, "|")))
	}
	for _, nf := range sn.Filters {
		parts = append(parts, nf.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, " & ")
}

// DomainSignature is Signature without the concrete values: the sorted
// set of domain[role] pairs. The workload ground truth uses it.
func (sn *StarNet) DomainSignature() string {
	parts := make([]string, 0, len(sn.Groups))
	for _, bg := range sn.Groups {
		parts = append(parts, fmt.Sprintf("%s[%s]", bg.Group.Domain(), bg.Path.Role))
	}
	sort.Strings(parts)
	return strings.Join(parts, " & ")
}

// String renders the net the way the paper's Table 1 does: one cell per
// hit group, "Table/Attr/{v1 OR v2}" plus the score.
func (sn *StarNet) String() string {
	parts := make([]string, 0, len(sn.Groups))
	for _, bg := range sn.Groups {
		vals := make([]string, 0, len(bg.Group.Hits))
		for _, h := range bg.Group.Hits {
			vals = append(vals, h.Value.Text())
		}
		parts = append(parts, fmt.Sprintf("%s/%s/{%s}", bg.Alias(), bg.Group.Attr, strings.Join(vals, " OR ")))
	}
	return fmt.Sprintf("%s  %.6f", strings.Join(parts, "  "), sn.Score)
}

// starSeed is a choice of hit groups covering every keyword exactly once
// (§4.2's star seed SS). Merged phrase groups cover several keywords.
type starSeed []*HitGroup

// enumerateSeeds produces every exact cover of the keywords by hit groups
// (including merged phrase groups). Keywords whose hit set is empty are
// skipped — they constrain nothing, which mirrors how a search engine
// ignores unmatched terms rather than returning nothing.
func enumerateSeeds(sets []*HitSet, merged []*HitGroup, maxSeeds int) []starSeed {
	n := len(sets)
	// Groups by their first covered keyword.
	byFirst := make([][]*HitGroup, n)
	for _, hs := range sets {
		for _, g := range hs.Groups {
			byFirst[hs.Index] = append(byFirst[hs.Index], g)
		}
	}
	for _, g := range merged {
		byFirst[g.Keywords[0]] = append(byFirst[g.Keywords[0]], g)
	}
	// Under the seed cap, enumerate the most promising choices first:
	// wider keyword coverage (phrase merges), then higher best-hit score.
	for i := range byFirst {
		gs := byFirst[i]
		sort.SliceStable(gs, func(a, b int) bool {
			if len(gs[a].Keywords) != len(gs[b].Keywords) {
				return len(gs[a].Keywords) > len(gs[b].Keywords)
			}
			return gs[a].BestScore() > gs[b].BestScore()
		})
	}
	var out []starSeed
	var cur starSeed
	covered := make([]bool, n)
	var rec func(i int)
	rec = func(i int) {
		if len(out) >= maxSeeds {
			return
		}
		for i < n && (covered[i] || len(byFirst[i]) == 0) {
			if !covered[i] {
				covered[i] = true // empty hit set: skip keyword
				defer func(k int) { covered[k] = false }(i)
			}
			i++
		}
		if i == n {
			if len(cur) > 0 {
				out = append(out, append(starSeed(nil), cur...))
			}
			return
		}
		for _, g := range byFirst[i] {
			ok := true
			for _, ki := range g.Keywords {
				if covered[ki] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, ki := range g.Keywords {
				covered[ki] = true
			}
			cur = append(cur, g)
			rec(i + 1)
			cur = cur[:len(cur)-1]
			for _, ki := range g.Keywords {
				covered[ki] = false
			}
		}
	}
	rec(0)
	return out
}

// netLimits bound star-net enumeration.
type netLimits struct {
	maxSeeds int
	maxNets  int
}

func defaultNetLimits() netLimits { return netLimits{maxSeeds: 512, maxNets: 2048} }

// generateStarNets is Algorithm 1: for every star seed, bind each hit
// group to each of its join paths to the fact table and emit the cross
// product. Hit groups whose table cannot reach the fact table are
// invalid interpretations and prune the whole seed, enforcing the §4.2
// requirement that every star net contain the fact table.
func generateStarNets(g *schemagraph.Graph, query string, seeds []starSeed, lim netLimits) []*StarNet {
	pathCache := make(map[string][]schemagraph.JoinPath)
	pathsOf := func(table string) []schemagraph.JoinPath {
		if p, ok := pathCache[table]; ok {
			return p
		}
		p := g.JoinPaths(table)
		pathCache[table] = p
		return p
	}
	var nets []*StarNet
	for _, seed := range seeds {
		if len(nets) >= lim.maxNets {
			break
		}
		choices := make([][]schemagraph.JoinPath, len(seed))
		valid := true
		for i, hg := range seed {
			ps := pathsOf(hg.Table)
			if len(ps) == 0 {
				valid = false
				break
			}
			choices[i] = ps
		}
		if !valid {
			continue
		}
		// Cross product of path choices.
		idx := make([]int, len(seed))
		for {
			bgs := make([]BoundGroup, len(seed))
			for i, hg := range seed {
				bgs[i] = BoundGroup{Group: hg, Path: choices[i][idx[i]]}
			}
			nets = append(nets, &StarNet{Query: query, Groups: bgs})
			if len(nets) >= lim.maxNets {
				break
			}
			// Increment the multi-index.
			k := len(idx) - 1
			for k >= 0 {
				idx[k]++
				if idx[k] < len(choices[k]) {
					break
				}
				idx[k] = 0
				k--
			}
			if k < 0 {
				break
			}
		}
	}
	return nets
}
