package kdapcore

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"kdap/internal/dataset"
	"kdap/internal/olap"
)

// awOnlineEngine builds the engine the paper's §6 experiments run on:
// AW_ONLINE with SUM(UnitPrice × OrderQuantity), >60k fact rows — large
// enough that an uncancelled explore does real work.
func awOnlineEngine() *Engine {
	wh := dataset.AWOnline()
	fact := wh.DB.Table(wh.Graph.FactTable())
	m := olap.ProductMeasure(fact, "SalesRevenue", "UnitPrice", "OrderQuantity")
	return NewEngine(wh.Graph, wh.Index, m, olap.Sum)
}

// TestCancelMidExplore is the end-to-end cancellation check of the
// request-lifecycle refactor: cancelling mid-explore on AW_ONLINE must
// return context.Canceled well under the uncancelled latency. The
// explore is inflated (many anneal iterations, fine buckets) so that
// uncancelled it runs for a long time; the cancelled run must come back
// orders of magnitude sooner.
func TestCancelMidExplore(t *testing.T) {
	e := awOnlineEngine()
	nets, err := e.Differentiate("California Mountain Bikes")
	if err != nil || len(nets) == 0 {
		t.Fatalf("differentiate: nets=%d err=%v", len(nets), err)
	}
	sn := nets[0]

	opts := DefaultExploreOptions()
	opts.Parallel = true
	opts.AnnealIters = 50_000_000 // uncancelled: many seconds of annealing
	opts.Buckets = 500

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = e.ExploreCtx(ctx, sn, opts)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("explore after cancel: err=%v (elapsed %v)", err, elapsed)
	}
	// The bound is deliberately generous for slow CI machines but still
	// far under the inflated uncancelled run time.
	if elapsed > 3*time.Second {
		t.Errorf("cancelled explore took %v; cancellation is not propagating", elapsed)
	}
}

// TestCancelMidDifferentiate covers the first pipeline phase: a context
// cancelled before the call returns context.Canceled from the hit-probe
// layer rather than running the full probe fan-out.
func TestCancelMidDifferentiate(t *testing.T) {
	e := awOnlineEngine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.DifferentiateCtx(ctx, "California Mountain Bikes"); !errors.Is(err, context.Canceled) {
		t.Fatalf("differentiate on cancelled ctx: err=%v", err)
	}
}

// TestConcurrentExploreCancel drives several concurrent explores over
// one shared engine while their contexts are cancelled at staggered
// times — the -race check that cancellation does not tear the engine's
// caches or the parallel scoring fan-out.
func TestConcurrentExploreCancel(t *testing.T) {
	e := ebizEngine()
	nets, err := e.Differentiate("Columbus LCD")
	if err != nil || len(nets) == 0 {
		t.Fatalf("differentiate: nets=%d err=%v", len(nets), err)
	}
	opts := DefaultExploreOptions()
	opts.Parallel = true

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			if i%2 == 0 {
				cancel() // half start cancelled, half cancel mid-flight
			} else {
				go func() {
					time.Sleep(time.Duration(i) * 500 * time.Microsecond)
					cancel()
				}()
			}
			defer cancel()
			sn := nets[i%len(nets)]
			if _, err := e.ExploreCtx(ctx, sn, opts); err != nil &&
				!errors.Is(err, context.Canceled) {
				t.Errorf("explore %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	// The engine must still work after the cancellation storm: no
	// partially-cancelled state may have been cached.
	if _, err := e.Explore(nets[0], opts); err != nil {
		t.Fatalf("explore after cancel storm: %v", err)
	}
}

// TestPartialFacetsOnDeadline exercises the opt-in degradation mode:
// when the deadline fires during attribute scoring (forced here by a
// scoring hook that outsleeps the deadline), PartialOnDeadline returns
// the best-so-far facets flagged Partial instead of DeadlineExceeded —
// and without the opt-in the same run fails.
func TestPartialFacetsOnDeadline(t *testing.T) {
	e := ebizEngine()
	nets, err := e.Differentiate("Columbus LCD")
	if err != nil || len(nets) == 0 {
		t.Fatalf("differentiate: nets=%d err=%v", len(nets), err)
	}
	sn := nets[0]
	// Warm the subspace and rollup inputs so the deadline cannot fire
	// before scoring starts.
	if _, err := e.Explore(sn, DefaultExploreOptions()); err != nil {
		t.Fatal(err)
	}

	mkOpts := func() ExploreOptions {
		opts := DefaultExploreOptions()
		opts.CustomScore = func(corr float64) float64 {
			time.Sleep(300 * time.Millisecond) // outsleep the deadline below
			return -corr
		}
		return opts
	}

	opts := mkOpts()
	opts.PartialOnDeadline = true
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	f, err := e.ExploreCtx(ctx, sn, opts)
	if err != nil {
		t.Fatalf("partial mode returned error: %v", err)
	}
	if !f.Partial {
		t.Error("facets not flagged Partial after deadline fired during scoring")
	}
	if f.SubspaceSize == 0 || f.TotalAggregate == 0 {
		t.Error("partial facets missing the pre-scoring aggregates")
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	if _, err := e.ExploreCtx(ctx2, sn, mkOpts()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("without opt-in: err=%v, want DeadlineExceeded", err)
	}
}

// TestSessionTimeout wires the deadline through the Session layer: a
// timeout far too small for any real work must surface as
// DeadlineExceeded from Query.
func TestSessionTimeout(t *testing.T) {
	s := NewSession(ebizEngine(), DefaultExploreOptions())
	s.SetTimeout(time.Nanosecond)
	if _, err := s.Query("Columbus LCD"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("query under 1ns timeout: err=%v", err)
	}
	s.SetTimeout(0)
	if _, err := s.Query("Columbus LCD"); err != nil {
		t.Fatalf("query without timeout: %v", err)
	}
}

// TestMergeIntervalsCtxCancel covers the anneal loop's in-flight check.
func TestMergeIntervalsCtxCancel(t *testing.T) {
	x := make([]float64, 40)
	y := make([]float64, 40)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(40 - i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultAnnealConfig()
	cfg.N = 1_000_000
	if _, err := MergeIntervalsCtx(ctx, x, y, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("anneal on cancelled ctx: err=%v", err)
	}
	// The Background wrapper still runs to completion.
	res := MergeIntervals(x, y, DefaultAnnealConfig())
	if len(res.Splits) == 0 {
		t.Error("uncancelled merge produced no splits")
	}
}
