package kdapcore

import (
	"strings"
	"testing"
)

// FuzzDifferentiate drives the whole differentiate phase with arbitrary
// query strings: it must never panic, and every returned net must cover
// each query keyword at most once.
func FuzzDifferentiate(f *testing.F) {
	for _, seed := range []string{
		"Columbus LCD", "San Jose", "UnitPrice>100", "Income<=0",
		"", "   ", "LCD LCD LCD", "a>b", ">>>", "Columbus UnitPrice>abc",
		"Seattle Portland TV", "x y z w v u t s r q p o n m",
	} {
		f.Add(seed)
	}
	e := ebizEngine()
	f.Fuzz(func(t *testing.T, q string) {
		if len(q) > 200 {
			return // keep the phase cheap under fuzzing
		}
		nets, err := e.Differentiate(q)
		if err != nil {
			return // rejected queries are fine; panics are not
		}
		for _, sn := range nets {
			if sn.Signature() == "" && len(sn.Groups) > 0 {
				t.Fatalf("net without signature for %q", q)
			}
			nkw := len(strings.Fields(q))
			covered := map[int]bool{}
			for _, bg := range sn.Groups {
				for _, k := range bg.Group.Keywords {
					if covered[k] || k < 0 || k >= nkw {
						t.Fatalf("keyword coverage broken for %q: %v", q, sn)
					}
					covered[k] = true
				}
			}
		}
	})
}

func FuzzParseFilterToken(f *testing.F) {
	for _, seed := range []string{"a>1", "b<=2.5", "c=3", ">", "x>", ">1", "a=b=c", "≤5", "p>=1e300"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, tok string) {
		attr, _, _, ok := parseFilterToken(tok)
		if ok && attr == "" {
			t.Fatalf("accepted token %q with empty attribute", tok)
		}
	})
}
