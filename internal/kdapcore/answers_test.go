package kdapcore

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// cachedEbizEngine is ebizEngine with the answer cache on.
func cachedEbizEngine() *Engine {
	e := ebizEngine()
	e.SetAnswerCache(64, 0)
	return e
}

// TestAnswerCacheDifferentiateStorm is the engine-level coalescing
// proof: N concurrent identical Differentiate calls perform the
// pipeline exactly once — one CacheMiss, everyone else served by the
// store or the in-flight computation, all with the same answer.
func TestAnswerCacheDifferentiateStorm(t *testing.T) {
	const n = 16
	e := cachedEbizEngine()

	start := make(chan struct{})
	var wg sync.WaitGroup
	var misses, served atomic.Int32
	results := make([][]*StarNet, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			nets, outcome, err := e.DifferentiateCachedCtx(context.Background(), "Columbus LCD")
			if err != nil || len(nets) == 0 {
				t.Errorf("goroutine %d: nets=%d err=%v", i, len(nets), err)
				return
			}
			results[i] = nets
			switch outcome {
			case CacheMiss:
				misses.Add(1)
			case CacheHit, CacheCoalesced:
				served.Add(1)
			default:
				t.Errorf("goroutine %d: unexpected outcome %v", i, outcome)
			}
		}(i)
	}
	close(start)
	wg.Wait()

	if misses.Load() != 1 {
		t.Fatalf("pipeline ran %d times, want exactly 1", misses.Load())
	}
	if served.Load() != n-1 {
		t.Fatalf("served from cache/in-flight: %d, want %d", served.Load(), n-1)
	}
	for i := 1; i < n; i++ {
		if &results[i][0] != &results[0][0] {
			// All callers share the one computed slice — not copies.
			t.Fatalf("goroutine %d received a different answer object", i)
		}
	}
}

// TestAnswerCacheCanonicalization: whitespace-variant spellings of the
// same query share one cache entry.
func TestAnswerCacheCanonicalization(t *testing.T) {
	e := cachedEbizEngine()
	nets1, outcome, err := e.DifferentiateCachedCtx(context.Background(), "Columbus LCD")
	if err != nil || outcome != CacheMiss {
		t.Fatalf("cold: outcome=%v err=%v", outcome, err)
	}
	nets2, outcome, err := e.DifferentiateCachedCtx(context.Background(), "  Columbus \t LCD ")
	if err != nil || outcome != CacheHit {
		t.Fatalf("whitespace variant: outcome=%v err=%v, want hit", outcome, err)
	}
	if &nets1[0] != &nets2[0] {
		t.Fatal("variant spelling did not share the cached answer")
	}
	if got := CanonicalQuery(" a \t b\nc "); got != "a b c" {
		t.Fatalf("CanonicalQuery = %q", got)
	}
}

// TestAnswerCacheInvalidation: InvalidateAnswers retires every cached
// answer and advances the data version that ETags embed.
func TestAnswerCacheInvalidation(t *testing.T) {
	e := cachedEbizEngine()
	ctx := context.Background()
	if _, outcome, err := e.DifferentiateCachedCtx(ctx, "Columbus LCD"); err != nil || outcome != CacheMiss {
		t.Fatalf("cold: outcome=%v err=%v", outcome, err)
	}
	if _, outcome, _ := e.DifferentiateCachedCtx(ctx, "Columbus LCD"); outcome != CacheHit {
		t.Fatalf("warm: outcome=%v, want hit", outcome)
	}
	v := e.DataVersion()
	e.InvalidateAnswers()
	if e.DataVersion() != v+1 {
		t.Fatalf("DataVersion = %d, want %d", e.DataVersion(), v+1)
	}
	if _, outcome, err := e.DifferentiateCachedCtx(ctx, "Columbus LCD"); err != nil || outcome != CacheMiss {
		t.Fatalf("post-invalidate: outcome=%v err=%v, want miss", outcome, err)
	}
}

// TestAnswerCacheExploreHit: a repeated explore is a CacheHit whose
// facets match the fresh computation exactly, rebound to the caller's
// own net.
func TestAnswerCacheExploreHit(t *testing.T) {
	e := cachedEbizEngine()
	ctx := context.Background()
	nets, _, err := e.DifferentiateCachedCtx(ctx, "Columbus LCD")
	if err != nil || len(nets) == 0 {
		t.Fatalf("differentiate: nets=%d err=%v", len(nets), err)
	}
	opts := DefaultExploreOptions()

	cold, outcome, err := e.ExploreCachedCtx(ctx, nets[0], opts)
	if err != nil || outcome != CacheMiss {
		t.Fatalf("cold explore: outcome=%v err=%v", outcome, err)
	}
	warm, outcome, err := e.ExploreCachedCtx(ctx, nets[0], opts)
	if err != nil || outcome != CacheHit {
		t.Fatalf("warm explore: outcome=%v err=%v", outcome, err)
	}
	if warm.Net != nets[0] {
		t.Fatal("cached facets not rebound to the caller's net")
	}
	if warm.SubspaceSize != cold.SubspaceSize || warm.TotalAggregate != cold.TotalAggregate {
		t.Fatalf("warm aggregates differ: %d/%g vs %d/%g",
			warm.SubspaceSize, warm.TotalAggregate, cold.SubspaceSize, cold.TotalAggregate)
	}
	if !reflect.DeepEqual(warm.Dimensions, cold.Dimensions) {
		t.Fatal("warm facet tree differs from cold computation")
	}

	// Option changes that shape the result are distinct cache entries.
	opts2 := opts
	opts2.Mode = Bellwether
	if _, outcome, err := e.ExploreCachedCtx(ctx, nets[0], opts2); err != nil || outcome != CacheMiss {
		t.Fatalf("mode change: outcome=%v err=%v, want miss", outcome, err)
	}
}

// TestAnswerCacheCustomScoreBypass: a CustomScore func has no canonical
// identity, so those explores bypass the cache entirely — and never
// pollute it for canonical callers.
func TestAnswerCacheCustomScoreBypass(t *testing.T) {
	e := cachedEbizEngine()
	ctx := context.Background()
	nets, _, err := e.DifferentiateCachedCtx(ctx, "Columbus LCD")
	if err != nil || len(nets) == 0 {
		t.Fatalf("differentiate: nets=%d err=%v", len(nets), err)
	}
	opts := DefaultExploreOptions()
	opts.CustomScore = func(corr float64) float64 { return -corr }
	if _, ok := ExploreCacheKey(nets[0], opts); ok {
		t.Fatal("CustomScore options produced a cache key")
	}
	for i := 0; i < 2; i++ {
		if _, outcome, err := e.ExploreCachedCtx(ctx, nets[0], opts); err != nil || outcome != CacheBypass {
			t.Fatalf("custom-score explore %d: outcome=%v err=%v, want bypass", i, outcome, err)
		}
	}
	if _, expl, ok := e.AnswerCacheStats(); !ok || expl.Len != 0 {
		t.Fatalf("bypassed explore left %d cache entries", expl.Len)
	}
}

// TestAnswerCacheDisabled: without SetAnswerCache every call is a
// bypass and stats report not-ok.
func TestAnswerCacheDisabled(t *testing.T) {
	e := ebizEngine()
	if e.AnswerCacheEnabled() {
		t.Fatal("cache enabled before SetAnswerCache")
	}
	if _, _, ok := e.AnswerCacheStats(); ok {
		t.Fatal("stats ok without a cache")
	}
	if _, outcome, err := e.DifferentiateCachedCtx(context.Background(), "Columbus LCD"); err != nil || outcome != CacheBypass {
		t.Fatalf("uncached differentiate: outcome=%v err=%v", outcome, err)
	}
}

// TestAnswerCacheCancelledNotCached carries PR 3's rule through the
// cached path: a cancelled differentiate leaves no entry behind.
func TestAnswerCacheCancelledNotCached(t *testing.T) {
	e := cachedEbizEngine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.DifferentiateCachedCtx(ctx, "Columbus LCD"); err == nil {
		t.Fatal("cancelled differentiate succeeded")
	}
	diff, _, ok := e.AnswerCacheStats()
	if !ok || diff.Len != 0 {
		t.Fatalf("cancelled computation left %d cached entries", diff.Len)
	}
	// And the next caller computes fresh, successfully.
	if nets, outcome, err := e.DifferentiateCachedCtx(context.Background(), "Columbus LCD"); err != nil || outcome != CacheMiss || len(nets) == 0 {
		t.Fatalf("retry after cancel: nets=%d outcome=%v err=%v", len(nets), outcome, err)
	}
}

// TestAnswerCacheTTL: entries expire; a TTL of an hour keeps them.
func TestAnswerCacheTTL(t *testing.T) {
	e := ebizEngine()
	e.SetAnswerCache(16, time.Hour)
	ctx := context.Background()
	if _, outcome, err := e.DifferentiateCachedCtx(ctx, "Columbus LCD"); err != nil || outcome != CacheMiss {
		t.Fatalf("cold: outcome=%v err=%v", outcome, err)
	}
	if _, outcome, _ := e.DifferentiateCachedCtx(ctx, "Columbus LCD"); outcome != CacheHit {
		t.Fatalf("within TTL: outcome=%v, want hit", outcome)
	}
}
