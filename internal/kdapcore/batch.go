package kdapcore

// Shared-scan batched execution. Concurrent explore requests against one
// engine overwhelmingly repeat each other's OLAP work: popular queries
// arrive in duplicate, and distinct interpretations still share roll-up
// background spaces (every single-hit net's "all" roll-up is the same
// full-table scan). The batcher exploits both. A request that reaches
// the execution layer waits a small gather window for company; when the
// batch is released, its members run concurrently over one shared scan
// scope — a per-batch memo in which each distinct roll-up row set,
// group-by scan, numeric series, and aggregate is computed exactly once
// (by the first member to need it) and shared by the rest. Identical
// whole requests collapse further: one member computes the facets, the
// others adopt the result.
//
// Determinism is inherited, not argued per call site: every memoized
// value is produced by the same solo code path with the same inputs a
// lone request would use, and the kernels underneath are byte-stable by
// the stripe-grid contract (see internal/olap). Sharing replaces a
// recomputation with the identical bytes it would have produced, so a
// batched explore's Facets.Fingerprint always equals the solo one.
//
// Cancellation follows cache.Group's rules: a cancelled member's
// in-progress computations are never shared (waiters retry and one
// becomes the new leader), and a member whose own context ends while
// gathering leaves the batch with its context error.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"kdap/internal/telemetry"
	"kdap/internal/telemetry/profile"
)

// DefaultBatchMax is the batch-size cap used when SetBatching is given a
// non-positive max.
const DefaultBatchMax = 16

// scanScope is the shared computation memo of one batch. Unlike a
// singleflight, completed results stay resident for the batch's
// lifetime: members do not run in lockstep, so a scan one member
// finished a millisecond ago must still be sharable by the next. Values
// are heterogeneous (row sets, group-by maps, series, aggregates) and
// treated as immutable by every consumer — the same contract cached
// answers already carry. The scope dies with its batch, bounding the
// memo's footprint to one gather's worth of distinct scans.
type scanScope struct {
	mu     sync.Mutex
	m      map[string]*scopeEntry
	shared *atomic.Int64 // engine-wide shared-scan counter

	// Batch identity for attribution: batchID is assigned when the batch
	// opens; size is its final member count, written before the batch's
	// released channel closes (so members read it race-free after join).
	batchID uint64
	size    int
}

// scopeEntry is one scan's slot: done closes when the computation
// finishes, after which v/err are immutable.
type scopeEntry struct {
	done chan struct{}
	v    any
	err  error
}

// do runs fn under key once per scope, sharing the result with every
// other member that asks for the same key — whether it asks while the
// computation is in flight (it waits) or after (it reads the memo).
// cache.Group's cancellation rule carries over: a leader's context
// error is never shared; the entry is vacated and a later caller
// recomputes under its own (live) context.
func (sc *scanScope) do(ctx context.Context, key string, fn func(context.Context) (any, error)) (any, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sc.mu.Lock()
		if sc.m == nil {
			sc.m = make(map[string]*scopeEntry)
		}
		if e, ok := sc.m[key]; ok {
			sc.mu.Unlock()
			// The wait-and-adopt is a real pipeline stage: record it as a
			// batch_shared span so a follower's trace shows where its answer
			// came from instead of an empty tree. The name is constant — the
			// batch ID lives in the wide event, not in a span name, so the
			// kdap_stage_seconds label set stays bounded.
			_, wsp := telemetry.StartSpan(ctx, "batch_shared")
			select {
			case <-e.done:
			case <-ctx.Done():
				wsp.End()
				return nil, ctx.Err()
			}
			wsp.End()
			if e.err != nil && isContextErr(e.err) {
				continue // vacated by the leader; retry, maybe as leader
			}
			sc.shared.Add(1)
			profile.FromContext(ctx).AddSharedScan()
			return e.v, e.err
		}
		e := &scopeEntry{done: make(chan struct{})}
		sc.m[key] = e
		sc.mu.Unlock()
		e.v, e.err = fn(ctx)
		if e.err != nil && isContextErr(e.err) {
			sc.mu.Lock()
			delete(sc.m, key)
			sc.mu.Unlock()
		}
		close(e.done)
		return e.v, e.err
	}
}

// isContextErr mirrors cache.isContextErr for the scope's sharing rule.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// scopeKey carries the batch's scan scope through the explore pipeline.
type scopeKey struct{}

// withScanScope attaches a batch's scan scope to the context.
func withScanScope(ctx context.Context, sc *scanScope) context.Context {
	return context.WithValue(ctx, scopeKey{}, sc)
}

// scanScopeOf returns the batch scan scope, or nil outside a batch.
func scanScopeOf(ctx context.Context) *scanScope {
	sc, _ := ctx.Value(scopeKey{}).(*scanScope)
	return sc
}

// scanBatch is one gather in progress: members join until the window
// timer fires or the batch is full, then released closes and everyone
// runs over the shared scope.
type scanBatch struct {
	released chan struct{}
	scope    *scanScope
	n        int
	timer    *time.Timer
	once     sync.Once
}

// batcher gathers concurrent requests into scanBatches.
type batcher struct {
	window time.Duration
	max    int

	mu  sync.Mutex
	cur *scanBatch

	seq      atomic.Uint64
	batches  atomic.Int64
	requests atomic.Int64
	sizeHist *telemetry.Histogram
	shared   *atomic.Int64
}

// release closes the batch exactly once (window expiry and the size cap
// can race) and records its final size.
func (b *batcher) release(bt *scanBatch) {
	b.mu.Lock()
	if b.cur == bt {
		b.cur = nil
	}
	n := bt.n
	b.mu.Unlock()
	bt.once.Do(func() {
		bt.timer.Stop()
		b.batches.Add(1)
		b.sizeHist.Observe(float64(n))
		bt.scope.size = n // before close: members read it after <-released
		close(bt.released)
	})
}

// join enters the current batch (opening one if none is gathering) and
// blocks until it is released or ctx ends. The returned scope is shared
// with every other member of the same batch.
func (b *batcher) join(ctx context.Context) (*scanScope, error) {
	b.mu.Lock()
	bt := b.cur
	if bt == nil {
		bt = &scanBatch{
			released: make(chan struct{}),
			scope:    &scanScope{shared: b.shared, batchID: b.seq.Add(1)},
		}
		bt.timer = time.AfterFunc(b.window, func() { b.release(bt) })
		b.cur = bt
	}
	bt.n++
	full := bt.n >= b.max
	b.mu.Unlock()
	b.requests.Add(1)
	if full {
		b.release(bt)
	}
	select {
	case <-bt.released:
		return bt.scope, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// BatchStats snapshots the engine's batched-execution counters.
type BatchStats struct {
	// Batches is how many gather windows have been released.
	Batches int64
	// Requests is how many requests entered a batch.
	Requests int64
	// SharedScans counts scan-scope computations served from another
	// member's work instead of recomputed.
	SharedScans int64
	// SharedExplores counts whole explore requests that adopted an
	// identical in-flight member's facets.
	SharedExplores int64
	// SharedDifferentiates likewise for differentiate requests.
	SharedDifferentiates int64
}

// SetBatching enables shared-scan batched execution: an explore that
// reaches the execution layer waits up to window for concurrent company
// and runs over a batch-shared scan scope (see ExploreBatchedCtx).
// window <= 0 disables batching; max <= 0 means DefaultBatchMax.
// Configure at startup — not safe to call concurrently with queries.
func (e *Engine) SetBatching(window time.Duration, max int) {
	if window <= 0 {
		e.batch.Store(nil)
		return
	}
	if max <= 0 {
		max = DefaultBatchMax
	}
	e.batch.Store(&batcher{
		window:   window,
		max:      max,
		sizeHist: e.batchSizeHist,
		shared:   &e.scanShared,
	})
}

// BatchingEnabled reports whether SetBatching has been configured.
func (e *Engine) BatchingEnabled() bool { return e.batch.Load() != nil }

// BatchSizeHistogram exposes the released-batch-size histogram for
// metrics wiring (buckets are request counts, not seconds).
func (e *Engine) BatchSizeHistogram() *telemetry.Histogram { return e.batchSizeHist }

// BatchStats snapshots the batched-execution counters.
func (e *Engine) BatchStats() BatchStats {
	st := BatchStats{
		SharedScans:          e.scanShared.Load(),
		SharedExplores:       e.explShared.Load(),
		SharedDifferentiates: e.diffShared.Load(),
	}
	if b := e.batch.Load(); b != nil {
		st.Batches = b.batches.Load()
		st.Requests = b.requests.Load()
	}
	return st
}

// ExploreBatchedCtx is ExploreCtx through the batch scheduler: with
// batching enabled the call gathers with its concurrent neighbors, then
// executes over the batch's shared scan scope; identical in-flight
// explores collapse to one computation. With batching disabled it is
// exactly ExploreCachedCtx. Results are byte-identical to solo
// execution either way.
func (e *Engine) ExploreBatchedCtx(ctx context.Context, sn *StarNet, opts ExploreOptions) (*Facets, CacheOutcome, error) {
	b := e.batch.Load()
	if b == nil {
		return e.ExploreCachedCtx(ctx, sn, opts)
	}
	// Answer-cache hits skip the gather entirely: there is nothing to
	// batch when the finished answer is already resident.
	key, cacheable := ExploreCacheKey(sn, opts)
	if e.explAnswers != nil && cacheable {
		if f, ok := e.explAnswers.Get(key); ok {
			return rebindFacets(f, sn), CacheHit, nil
		}
	}
	_, gsp := telemetry.StartSpan(ctx, "batch_gather")
	scope, err := b.join(ctx)
	gsp.End()
	if err != nil {
		return nil, CacheBypass, err
	}
	ctx = withScanScope(ctx, scope)
	profile.FromContext(ctx).SetBatch(scope.batchID, scope.size)
	if !cacheable {
		f, err := e.exploreUncached(ctx, sn, opts)
		return f, CacheBypass, err
	}
	if e.explAnswers != nil {
		// The answer cache's own singleflight already collapses identical
		// members; the scope still shares partial work across distinct ones.
		t0 := time.Now()
		f, oc, err := e.ExploreCachedCtx(ctx, sn, opts)
		if oc == CacheCoalesced {
			noteSharedAnswer(ctx, time.Since(t0))
		}
		return f, oc, err
	}
	t0 := time.Now()
	f, shared, err := e.explFlight.Do(ctx, key, func(ctx context.Context) (*Facets, error) {
		return e.exploreUncached(ctx, sn, opts)
	})
	if err != nil {
		return nil, CacheBypass, err
	}
	if shared {
		e.explShared.Add(1)
		noteSharedAnswer(ctx, time.Since(t0))
		return rebindFacets(f, sn), CacheCoalesced, nil
	}
	return f, CacheBypass, nil
}

// noteSharedAnswer marks a follower request: its whole answer was
// adopted from a batch peer's in-flight computation. Before this, such
// requests returned an empty span tree under ?trace=1 — the work
// happened, just in a peer's goroutine — so the wait-and-adopt is
// recorded as a batch_shared stage and the wide event flips to the
// follower role.
func noteSharedAnswer(ctx context.Context, d time.Duration) {
	telemetry.SpanFromContext(ctx).AddTimed("batch_shared", d)
	profile.FromContext(ctx).MarkSharedAnswer()
}

// DifferentiateBatchedCtx is the differentiate counterpart. The phase
// runs no fact-table scans, so it never waits for a gather window — the
// only batching win is collapsing identical concurrent queries, which
// singleflight provides without adding latency.
func (e *Engine) DifferentiateBatchedCtx(ctx context.Context, query string) ([]*StarNet, CacheOutcome, error) {
	if e.batch.Load() == nil {
		return e.DifferentiateCachedCtx(ctx, query)
	}
	if e.diffAnswers != nil {
		// With an answer cache, differentiateCached already coalesces;
		// mark followers the same way the explore path does.
		t0 := time.Now()
		nets, oc, err := e.DifferentiateCachedCtx(ctx, query)
		if oc == CacheCoalesced {
			noteSharedAnswer(ctx, time.Since(t0))
		}
		return nets, oc, err
	}
	key := diffAnswerKey(query, Standard)
	t0 := time.Now()
	nets, shared, err := e.diffFlight.Do(ctx, key, func(ctx context.Context) ([]*StarNet, error) {
		return e.differentiateRanked(ctx, query, Standard)
	})
	if err != nil {
		return nil, CacheBypass, err
	}
	if shared {
		e.diffShared.Add(1)
		noteSharedAnswer(ctx, time.Since(t0))
		return nets, CacheCoalesced, nil
	}
	return nets, CacheBypass, nil
}
