package kdapcore

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"

	"kdap/internal/relation"
	"kdap/internal/schemagraph"
)

// The paper's §7 notes that "our current model does not consider measure
// attributes as hit candidates" and flags it as future work. This file
// implements that extension: a query token of the form
//
//	Attr>100   Attr>=100   Attr<100   Attr<=100   Attr=100
//
// is recognized as a numeric predicate rather than a keyword. The
// attribute name resolves case-insensitively against the fact table's
// numeric columns (measure attributes) and the dimensions' numeric
// group-by candidates, and the predicate further slices every star net's
// sub-dataspace ("UnitPrice>500 Columbus LCD" → expensive LCD sales in
// Columbus).

// FilterOp is a numeric comparison operator.
type FilterOp int

// The supported comparison operators.
const (
	OpGT FilterOp = iota
	OpGE
	OpLT
	OpLE
	OpEQ
)

// String renders the operator symbol.
func (op FilterOp) String() string {
	switch op {
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpEQ:
		return "="
	default:
		return "?"
	}
}

// Matches applies the operator.
func (op FilterOp) Matches(x, bound float64) bool {
	switch op {
	case OpGT:
		return x > bound
	case OpGE:
		return x >= bound
	case OpLT:
		return x < bound
	case OpLE:
		return x <= bound
	case OpEQ:
		return x == bound
	default:
		return false
	}
}

// NumericFilter is one resolved numeric predicate of a query.
type NumericFilter struct {
	// Raw is the original query token.
	Raw string
	// Attr is the resolved attribute; for fact (measure) columns the
	// table is the fact table itself.
	Attr schemagraph.AttrRef
	// Role is the join-path role used to reach a dimension attribute;
	// empty for fact columns.
	Role string
	// Path is the resolved join path from the attribute's table to the
	// fact table (empty for fact columns).
	Path schemagraph.JoinPath
	// OnFact marks a measure attribute on the fact table.
	OnFact bool
	Op     FilterOp
	Value  float64
}

// String renders the filter as "Table.Attr>value".
func (nf NumericFilter) String() string {
	return fmt.Sprintf("%s%s%g", nf.Attr, nf.Op, nf.Value)
}

// bounds returns the conservative closed interval [lo, hi] containing
// every value the predicate accepts — what licenses the executor's
// shard planner to skip shards whose zone map misses the interval.
// Exactness stays with Op.Matches; the bounds only bound.
func (nf NumericFilter) bounds() (lo, hi float64) {
	switch nf.Op {
	case OpGT, OpGE:
		return nf.Value, math.Inf(1)
	case OpLT, OpLE:
		return math.Inf(-1), nf.Value
	case OpEQ:
		return nf.Value, nf.Value
	default:
		return math.Inf(-1), math.Inf(1)
	}
}

// parseFilterToken splits a token like "Price>=100" into its parts. The
// boolean reports whether the token is a well-formed numeric predicate.
func parseFilterToken(tok string) (attr string, op FilterOp, val float64, ok bool) {
	for _, cand := range []struct {
		sym string
		op  FilterOp
	}{
		// Two-character operators first so ">=" does not parse as ">".
		{">=", OpGE}, {"<=", OpLE}, {">", OpGT}, {"<", OpLT}, {"=", OpEQ},
	} {
		i := strings.Index(tok, cand.sym)
		if i <= 0 || i+len(cand.sym) >= len(tok) {
			continue
		}
		name := tok[:i]
		numStr := tok[i+len(cand.sym):]
		v, err := strconv.ParseFloat(numStr, 64)
		if err != nil {
			return "", 0, 0, false
		}
		return name, cand.op, v, true
	}
	return "", 0, 0, false
}

// resolveFilter binds a parsed predicate to a concrete numeric attribute:
// fact-table numeric columns first (measure attributes), then the
// dimensions' numeric group-by candidates, matched case-insensitively.
func (e *Engine) resolveFilter(raw, name string, op FilterOp, val float64) (NumericFilter, error) {
	fact := e.graph.DB().Table(e.graph.FactTable())
	for _, col := range fact.Schema().Columns {
		if !strings.EqualFold(col.Name, name) {
			continue
		}
		if col.Kind != relation.KindInt && col.Kind != relation.KindFloat {
			return NumericFilter{}, fmt.Errorf("kdap: %s is not numeric", col.Name)
		}
		return NumericFilter{
			Raw:    raw,
			Attr:   schemagraph.AttrRef{Table: fact.Name(), Attr: col.Name},
			OnFact: true, Op: op, Value: val,
		}, nil
	}
	for _, d := range e.graph.Dimensions() {
		for _, gb := range d.GroupBy {
			if !strings.EqualFold(gb.Attr, name) {
				continue
			}
			col, ok := e.graph.DB().Table(gb.Table).Schema().Column(gb.Attr)
			if !ok || (col.Kind != relation.KindInt && col.Kind != relation.KindFloat) {
				continue
			}
			path, ok := e.graph.PathFromFact(gb.Table, d.Name)
			if !ok {
				continue
			}
			return NumericFilter{Raw: raw, Attr: gb, Role: d.Name, Path: path, Op: op, Value: val}, nil
		}
	}
	return NumericFilter{}, fmt.Errorf("kdap: no numeric attribute named %q", name)
}

// extractFilters splits the query's tokens into numeric predicates and
// plain keywords. Unresolvable predicate-shaped tokens are an error —
// silently treating "Price>100" as text would surprise the user.
func (e *Engine) extractFilters(keywords []string) (filters []NumericFilter, rest []string, err error) {
	for _, kw := range keywords {
		name, op, val, ok := parseFilterToken(kw)
		if !ok {
			rest = append(rest, kw)
			continue
		}
		nf, err := e.resolveFilter(kw, name, op, val)
		if err != nil {
			return nil, nil, err
		}
		filters = append(filters, nf)
	}
	return filters, rest, nil
}

// applyFilters narrows fact rows by every predicate.
func (e *Engine) applyFilters(rows []int, filters []NumericFilter) []int {
	out, _ := e.applyFiltersCtx(context.Background(), rows, filters)
	return out
}

// filterCheckRows is the stride between ctx.Err() checks in the fact-
// column predicate loop (the dimension branch delegates its own checks
// to FilterRowsNumericCtx).
const filterCheckRows = 8192

// applyFiltersCtx is applyFilters under a cancellable context, checking
// between predicates and every filterCheckRows rows within one.
func (e *Engine) applyFiltersCtx(ctx context.Context, rows []int, filters []NumericFilter) ([]int, error) {
	fact := e.graph.DB().Table(e.graph.FactTable())
	done := ctx.Done()
	for _, nf := range filters {
		if len(rows) == 0 {
			return rows, nil
		}
		nf := nf
		match := func(x float64) bool { return nf.Op.Matches(x, nf.Value) }
		lo, hi := nf.bounds()
		if nf.OnFact {
			// Under a partition the executor's vectorized scan skips
			// shards whose zone map misses [lo, hi] and reads the dense
			// float view; over a disk-backed fact table the segment walk
			// skips segments on zone evidence without paging them in.
			// Both produce exactly the rows the boxed scan below keeps
			// (NULL is NaN in the float view and matches no operator).
			// The boxed path is retained for plain resident tables as
			// the honest pre-sharding baseline for the benches.
			if e.exec.Partition() != nil || fact.Backing() != nil {
				var err error
				rows, err = e.exec.FilterFactNumericCtx(ctx, rows, nf.Attr.Attr, lo, hi, match)
				if err != nil {
					return nil, err
				}
				continue
			}
			ci := fact.Schema().ColumnIndex(nf.Attr.Attr)
			var out []int
			for base := 0; base < len(rows); base += filterCheckRows {
				if done != nil {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				end := min(base+filterCheckRows, len(rows))
				for _, r := range rows[base:end] {
					v := fact.Row(r)[ci]
					if !v.IsNull() && nf.Op.Matches(v.AsFloat(), nf.Value) {
						out = append(out, r)
					}
				}
			}
			rows = out
			continue
		}
		var err error
		rows, err = e.exec.FilterRowsNumericBoundCtx(ctx, rows, nf.Attr.Attr, nf.Path, lo, hi, match)
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
