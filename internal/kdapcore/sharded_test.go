package kdapcore

import (
	"bytes"
	"context"
	"sync"
	"testing"
)

// Concurrent scatter-gather: many goroutines exploring (and drilling
// into) the same sharded engine must produce identical facets with no
// data races. Exercises the shard planner, the lazy per-(path,attr)
// zone maps, the parallel filter gather, and the shard counters under
// contention. Run under go test -race.
func TestConcurrentShardedExplore(t *testing.T) {
	e := awOnlineEngine()
	e.SetShards(24)
	nets, err := e.Differentiate("Road Bikes UnitPrice>1000")
	if err != nil || len(nets) == 0 {
		t.Fatalf("differentiate: nets=%d err=%v", len(nets), err)
	}
	sn := nets[0]
	opts := DefaultExploreOptions()
	opts.Parallel = true

	want, err := e.Explore(sn, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantFP := want.Fingerprint()

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	outs := make([][]byte, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := e.ExploreCtx(context.Background(), sn, opts)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = f.Fingerprint()
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if !bytes.Equal(outs[i], wantFP) {
			t.Fatalf("worker %d produced different facets", i)
		}
	}
	st := e.Executor().Stats()
	if st.ShardsScanned == 0 {
		t.Fatal("no scan consulted the shard planner")
	}
}

// A numeric drill bound on the ingest-clustered SalesKey column must
// make the planner skip shards — the zone maps have to earn their keep,
// not merely split the scan — while the drill result stays identical to
// the monolithic engine's.
func TestShardedDrillPrunesShards(t *testing.T) {
	shd := awOnlineEngine()
	shd.SetShards(32)
	mono := awOnlineEngine()

	const query = "Road Bikes SalesKey>54000"
	nets, err := shd.Differentiate(query)
	if err != nil || len(nets) == 0 {
		t.Fatalf("differentiate: nets=%d err=%v", len(nets), err)
	}
	monoNets, err := mono.Differentiate(query)
	if err != nil || len(monoNets) == 0 {
		t.Fatalf("monolithic differentiate: nets=%d err=%v", len(monoNets), err)
	}

	before := shd.Executor().Stats()
	rows := shd.SubspaceRows(nets[0])
	after := shd.Executor().Stats()
	monoRows := mono.SubspaceRows(monoNets[0])

	if len(rows) == 0 {
		t.Fatal("SalesKey>54000 subspace is empty — bad fixture")
	}
	if len(rows) != len(monoRows) {
		t.Fatalf("sharded subspace %d rows, monolithic %d", len(rows), len(monoRows))
	}
	for i := range rows {
		if rows[i] != monoRows[i] {
			t.Fatalf("row mismatch at %d: %d vs %d", i, rows[i], monoRows[i])
		}
	}
	pruned := (after.ShardsPrunedZone - before.ShardsPrunedZone)
	if pruned < 20 {
		t.Fatalf("SalesKey>54000 over 32 shards zone-pruned only %d — zone maps are not skipping shards", pruned)
	}
	if after.ShardsScanned == before.ShardsScanned {
		t.Fatal("no shard was scanned")
	}
}
