package kdapcore

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGreedyProducesKRanges(t *testing.T) {
	x, y := randSeries(4, 40)
	for _, k := range []int{2, 5, 7} {
		res := MergeIntervalsGreedy(x, y, AnnealConfig{K: k, L: 4})
		if len(res.Splits) != k-1 {
			t.Errorf("K=%d: splits = %v", k, res.Splits)
		}
	}
}

func TestGreedyDegenerate(t *testing.T) {
	x, y := randSeries(5, 4)
	res := MergeIntervalsGreedy(x, y, AnnealConfig{K: 10, L: 4})
	if res.ErrPct != 0 || len(res.Splits) != 3 {
		t.Errorf("K>=m: %+v", res)
	}
	res = MergeIntervalsGreedy(x, y, AnnealConfig{K: 1, L: 4})
	if len(res.Splits) != 0 {
		t.Errorf("K=1: %+v", res)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	MergeIntervalsGreedy([]float64{1}, []float64{1, 2}, AnnealConfig{K: 2, L: 4})
}

func TestGreedyDeterministic(t *testing.T) {
	x, y := randSeries(6, 30)
	a := MergeIntervalsGreedy(x, y, AnnealConfig{K: 5, L: 4})
	b := MergeIntervalsGreedy(x, y, AnnealConfig{K: 5, L: 4})
	if a.Score != b.Score {
		t.Error("greedy must be deterministic")
	}
	for i := range a.Splits {
		if a.Splits[i] != b.Splits[i] {
			t.Error("splits diverged")
		}
	}
}

// Greedy quality is comparable with annealing on typical series: within a
// few points of error, usually better than the equal-width start.
func TestGreedyQualityVsAnnealing(t *testing.T) {
	var greedyWorse int
	const trials = 20
	for seed := uint64(0); seed < trials; seed++ {
		x, y := randSeries(seed+100, 40)
		cfg := AnnealConfig{K: 6, L: 4, N: 500, AcceptProb: 0.25, Seed: seed}
		sa := MergeIntervals(x, y, cfg)
		gr := MergeIntervalsGreedy(x, y, cfg)
		if gr.ErrPct > sa.ErrPct+5 {
			greedyWorse++
		}
		if !validSplits(gr.Splits, 40, 1e9) { // structural validity
			t.Fatalf("greedy produced invalid splits: %v", gr.Splits)
		}
	}
	if greedyWorse > trials/2 {
		t.Errorf("greedy clearly worse than annealing on %d/%d series", greedyWorse, trials)
	}
}

// Property: greedy splits are strictly increasing and within bounds.
func TestGreedyStructureProperty(t *testing.T) {
	f := func(seed uint64, kRaw, mRaw uint8) bool {
		m := int(mRaw)%50 + 6
		k := int(kRaw)%5 + 2
		x, y := randSeries(seed, m)
		res := MergeIntervalsGreedy(x, y, AnnealConfig{K: k, L: 4})
		prev := 0
		for _, s := range res.Splits {
			if s <= prev || s >= m {
				return false
			}
			prev = s
		}
		return !math.IsNaN(res.Score)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
