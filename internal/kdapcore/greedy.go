package kdapcore

import (
	"math"

	"kdap/internal/stats"
)

// MergeIntervalsGreedy is an alternative to Algorithm 2's simulated
// annealing, implementing the paper's §7 hypothesis that "more efficient
// algorithms for finding partitions" exist: a deterministic bottom-up
// agglomerative merge. Starting from every basic interval as its own
// range, it repeatedly merges the adjacent pair whose merge moves the
// partition's correlation least away from the basic-interval correlation,
// until K ranges remain; pairs whose merge would violate the L-skew
// constraint at the final size are avoided when a legal alternative
// exists.
//
// Greedy runs in O(m²) score evaluations with no randomness; the
// BenchmarkMergeAblation benchmark compares its speed and quality against
// the annealer.
func MergeIntervalsGreedy(x, y []float64, cfg AnnealConfig) MergeResult {
	if len(x) != len(y) {
		panic("kdapcore: MergeIntervalsGreedy series length mismatch")
	}
	m := len(x)
	k := cfg.K
	if k > m {
		k = m
	}
	if k < 1 {
		k = 1
	}
	basic := stats.Pearson(x, y)

	// bounds[i] is the exclusive end of range i; ranges are contiguous.
	bounds := make([]int, m)
	for i := range bounds {
		bounds[i] = i + 1
	}
	toSplits := func(bs []int) []int {
		return append([]int(nil), bs[:len(bs)-1]...)
	}
	score := func(bs []int) float64 {
		return stats.Pearson(mergeSeries(x, toSplits(bs)), mergeSeries(y, toSplits(bs)))
	}

	for len(bounds) > k {
		bestIdx, bestLegalIdx := -1, -1
		bestErr, bestLegalErr := math.Inf(1), math.Inf(1)
		for i := 0; i < len(bounds)-1; i++ {
			cand := make([]int, 0, len(bounds)-1)
			cand = append(cand, bounds[:i]...)
			cand = append(cand, bounds[i+1:]...)
			e := math.Abs(score(cand) - basic)
			if e < bestErr {
				bestErr = e
				bestIdx = i
			}
			// Only enforce the skew constraint on the final merge level —
			// intermediate partitions may be skewed on the way down.
			if len(bounds)-1 > k || validSplits(toSplits(cand), m, cfg.L) {
				if e < bestLegalErr {
					bestLegalErr = e
					bestLegalIdx = i
				}
			}
		}
		pick := bestLegalIdx
		if pick < 0 {
			pick = bestIdx
		}
		bounds = append(bounds[:pick], bounds[pick+1:]...)
	}
	splits := toSplits(bounds)
	final := score(bounds)
	return MergeResult{
		Splits:     splits,
		Score:      final,
		BasicScore: basic,
		ErrPct:     stats.AbsErrPct(final, basic),
		History:    []float64{stats.AbsErrPct(final, basic)},
	}
}
