package kdapcore

import (
	"context"
	"math"

	"kdap/internal/stats"
	"kdap/internal/telemetry/profile"
)

// AnnealConfig parameterizes the Algorithm 2 interval merge.
type AnnealConfig struct {
	// K is the number of displayed numeric categories (5–7 in §6.5).
	K int
	// L bounds the skew: the largest merged range may contain at most L
	// times as many basic intervals as the smallest (§5.3.2's second
	// objective).
	L float64
	// N is the iteration count (§6.5 shows convergence by ~100, and a
	// 500-iteration merge under 5 ms).
	N int
	// AcceptProb is the probability of accepting a non-improving neighbor
	// as the new current state — the pseudocode's "RANDOM() > some
	// constant" escape from local maxima.
	AcceptProb float64
	// Seed drives the deterministic random source.
	Seed uint64
}

// DefaultAnnealConfig returns the paper's defaults.
func DefaultAnnealConfig() AnnealConfig {
	return AnnealConfig{K: 6, L: 4, N: 500, AcceptProb: 0.25, Seed: 1}
}

// MergeResult is the outcome of one interval merge.
type MergeResult struct {
	// Splits are the K-1 split positions: range j spans basic intervals
	// [Splits[j-1], Splits[j]) with implicit 0 and m sentinels.
	Splits []int
	// Score is the correlation between the merged X and Y series.
	Score float64
	// BasicScore is the correlation over the unmerged basic intervals —
	// the value the merge tries to preserve.
	BasicScore float64
	// ErrPct is |Score − BasicScore| / |BasicScore| × 100, the figures'
	// y-axis.
	ErrPct float64
	// History records ErrPct of the best-so-far solution after every
	// iteration (index 0 = the equal-width start), for Figure 7/8.
	History []float64
}

// mergeSeries sums x within each range defined by splits.
func mergeSeries(x []float64, splits []int) []float64 {
	out := make([]float64, len(splits)+1)
	mergeSeriesInto(out, x, splits)
	return out
}

// mergeSeriesInto is mergeSeries writing into a caller-owned buffer of
// len(splits)+1 entries, so the annealing loop runs allocation-free.
func mergeSeriesInto(out, x []float64, splits []int) {
	prev := 0
	for j := range out {
		b := len(x)
		if j < len(splits) {
			b = splits[j]
		}
		var s float64
		for i := prev; i < b; i++ {
			s += x[i]
		}
		out[j] = s
		prev = b
	}
}

// validSplits checks ordering, bounds, and the L-skew constraint.
func validSplits(splits []int, m int, l float64) bool {
	prev := 0
	minW, maxW := math.MaxInt, 0
	for i := 0; i <= len(splits); i++ {
		s := m
		if i < len(splits) {
			s = splits[i]
		}
		w := s - prev
		if w < 1 {
			return false
		}
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
		prev = s
	}
	return float64(maxW) <= l*float64(minW)
}

// MergeIntervals is Algorithm 2: merge m basic intervals (with aggregate
// series x for the sub-dataspace and y for its roll-up space) into K
// contiguous ranges whose merged correlation stays as close as possible to
// the basic-interval correlation, subject to the L-skew constraint. The
// search is simulated annealing over split positions, starting from
// equal-width splits; it runs entirely in memory with no store access, as
// §5.3.2 emphasizes.
func MergeIntervals(x, y []float64, cfg AnnealConfig) MergeResult {
	res, _ := MergeIntervalsCtx(context.Background(), x, y, cfg)
	return res
}

// annealCheckIters is the stride between ctx.Err() checks in the anneal
// loop. One iteration is a handful of O(K) scans, so 64 iterations keep
// cancellation latency in the microseconds.
const annealCheckIters = 64

// MergeIntervalsCtx is MergeIntervals under a cancellable context: the
// N-iteration annealing loop checks ctx every annealCheckIters
// iterations and abandons the search (the default 500-iteration merge is
// fast, but an Explore runs one merge per numeric facet and the
// iteration count is configurable).
func MergeIntervalsCtx(ctx context.Context, x, y []float64, cfg AnnealConfig) (MergeResult, error) {
	if len(x) != len(y) {
		panic("kdapcore: MergeIntervals series length mismatch")
	}
	m := len(x)
	k := cfg.K
	if k > m {
		k = m
	}
	if k < 1 {
		k = 1
	}
	basic := stats.Pearson(x, y)

	// Equal-width start.
	start := make([]int, 0, k-1)
	for j := 1; j < k; j++ {
		start = append(start, j*m/k)
	}
	// Scratch merged series, reused across the whole search: the loop
	// below runs allocation-free, which matters because every numeric
	// facet in an Explore runs a full N-iteration merge.
	mx := make([]float64, k)
	my := make([]float64, k)
	score := func(splits []int) float64 {
		mergeSeriesInto(mx, x, splits)
		mergeSeriesInto(my, y, splits)
		return stats.Pearson(mx, my)
	}
	errOf := func(s float64) float64 { return math.Abs(s - basic) }

	cur := append([]int(nil), start...)
	best := append([]int(nil), start...)
	bestScore := score(best)
	bestErr := errOf(bestScore)
	curErr := bestErr
	history := make([]float64, 0, cfg.N+1)
	record := func() {
		history = append(history, stats.AbsErrPct(bestScore, basic))
	}
	record()

	rng := stats.NewRNG(cfg.Seed)
	neighbor := make([]int, len(cur))
	done := ctx.Done()
	for i := 0; i < cfg.N; i++ {
		if done != nil && i%annealCheckIters == 0 {
			if err := ctx.Err(); err != nil {
				return MergeResult{}, err
			}
		}
		if len(cur) == 0 {
			record()
			continue // K >= m: nothing to move
		}
		// Neighbor: move one random split by ±1 basic interval.
		copy(neighbor, cur)
		j := rng.Intn(len(neighbor))
		if rng.Intn(2) == 0 {
			neighbor[j]--
		} else {
			neighbor[j]++
		}
		if !validSplits(neighbor, m, cfg.L) {
			record()
			continue
		}
		nScore := score(neighbor)
		nErr := errOf(nScore)
		if nErr < bestErr {
			best = append(best[:0], neighbor...)
			bestScore, bestErr = nScore, nErr
		}
		// Accept improving neighbors always; others with AcceptProb, the
		// pseudocode's deliberate acceptance of worse states. (The
		// short-circuit keeps the RNG call sequence identical to the
		// allocating implementation, so results are unchanged.)
		if nErr <= curErr || rng.Float64() < cfg.AcceptProb {
			cur, neighbor = neighbor, cur
			curErr = nErr
		}
		record()
	}
	profile.FromContext(ctx).AddAnneal(cfg.N)
	final := bestScore
	return MergeResult{
		Splits:     best,
		Score:      final,
		BasicScore: basic,
		ErrPct:     stats.AbsErrPct(final, basic),
		History:    history,
	}, nil
}
