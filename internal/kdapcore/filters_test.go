package kdapcore

import (
	"testing"
)

func TestParseFilterToken(t *testing.T) {
	cases := []struct {
		tok  string
		attr string
		op   FilterOp
		val  float64
		ok   bool
	}{
		{"Price>100", "Price", OpGT, 100, true},
		{"Price>=100.5", "Price", OpGE, 100.5, true},
		{"Income<20000", "Income", OpLT, 20000, true},
		{"Age<=65", "Age", OpLE, 65, true},
		{"Qty=3", "Qty", OpEQ, 3, true},
		{"Columbus", "", 0, 0, false},
		{">100", "", 0, 0, false},      // no attribute
		{"Price>", "", 0, 0, false},    // no value
		{"Price>abc", "", 0, 0, false}, // non-numeric value
		{"a=b=c", "", 0, 0, false},
	}
	for _, c := range cases {
		attr, op, val, ok := parseFilterToken(c.tok)
		if ok != c.ok {
			t.Errorf("%q: ok=%v, want %v", c.tok, ok, c.ok)
			continue
		}
		if ok && (attr != c.attr || op != c.op || val != c.val) {
			t.Errorf("%q parsed as (%q,%v,%g)", c.tok, attr, op, val)
		}
	}
}

func TestFilterOpMatches(t *testing.T) {
	if !OpGT.Matches(2, 1) || OpGT.Matches(1, 1) {
		t.Error("OpGT")
	}
	if !OpGE.Matches(1, 1) || OpGE.Matches(0.5, 1) {
		t.Error("OpGE")
	}
	if !OpLT.Matches(0, 1) || OpLT.Matches(1, 1) {
		t.Error("OpLT")
	}
	if !OpLE.Matches(1, 1) || OpLE.Matches(2, 1) {
		t.Error("OpLE")
	}
	if !OpEQ.Matches(3, 3) || OpEQ.Matches(3, 4) {
		t.Error("OpEQ")
	}
	if OpGT.String() != ">" || OpGE.String() != ">=" || OpEQ.String() != "=" {
		t.Error("operator symbols")
	}
	if FilterOp(99).Matches(1, 1) {
		t.Error("unknown op must match nothing")
	}
}

func TestQueryWithFactColumnFilter(t *testing.T) {
	e := ebizEngine()
	plain, err := e.Differentiate("Projectors")
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := e.Differentiate("Projectors UnitPrice>1000")
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) == 0 {
		t.Fatal("no nets with filter")
	}
	if len(filtered[0].Filters) != 1 || !filtered[0].Filters[0].OnFact {
		t.Fatalf("filters = %+v", filtered[0].Filters)
	}
	rp := e.SubspaceRows(plain[0])
	rf := e.SubspaceRows(filtered[0])
	if len(rf) == 0 || len(rf) >= len(rp) {
		t.Errorf("filter did not narrow: %d vs %d", len(rf), len(rp))
	}
	fact := ebiz.DB.Table("TRANSITEM")
	ci := fact.Schema().ColumnIndex("UnitPrice")
	for _, r := range rf {
		if fact.Row(r)[ci].AsFloat() <= 1000 {
			t.Fatalf("row %d violates UnitPrice>1000", r)
		}
	}
	// The signature distinguishes filtered interpretations.
	if plain[0].Signature() == filtered[0].Signature() {
		t.Error("filter not reflected in signature")
	}
}

func TestQueryWithDimensionAttrFilter(t *testing.T) {
	e := ebizEngine()
	nets, err := e.Differentiate("Projectors Income>100000")
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) == 0 || len(nets[0].Filters) != 1 {
		t.Fatalf("nets/filters: %d", len(nets))
	}
	nf := nets[0].Filters[0]
	if nf.OnFact || nf.Attr.Table != "CUSTOMER" || nf.Role != "Customer" {
		t.Errorf("resolved filter = %+v", nf)
	}
	rows := e.SubspaceRows(nets[0])
	if len(rows) == 0 {
		t.Fatal("filter emptied the subspace entirely")
	}
	// Exploring a filtered net still works (rollups share the filter).
	if _, err := e.Explore(nets[0], DefaultExploreOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestPurePredicateQuery(t *testing.T) {
	e := ebizEngine()
	nets, err := e.Differentiate("UnitPrice>1500")
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != 1 || len(nets[0].Groups) != 0 {
		t.Fatalf("pure predicate nets = %+v", nets)
	}
	rows := e.SubspaceRows(nets[0])
	if len(rows) == 0 || len(rows) >= e.Executor().FactLen() {
		t.Errorf("pure predicate slice = %d rows", len(rows))
	}
}

func TestUnknownFilterAttributeErrors(t *testing.T) {
	e := ebizEngine()
	if _, err := e.Differentiate("Projectors Bogus>10"); err == nil {
		t.Error("unresolvable predicate accepted")
	}
	if _, err := e.Differentiate("Projectors ProductName>10"); err == nil {
		t.Error("non-numeric fact filter should error or miss") // ProductName is not on the fact table: resolves nowhere
	}
}

func TestFilterSurvivesDrill(t *testing.T) {
	e := ebizEngine()
	nets, _ := e.Differentiate("Projectors UnitPrice>500")
	f, err := e.Explore(nets[0], DefaultExploreOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Dimensions {
		for _, a := range d.Attributes {
			if a.Numeric || len(a.Instances) == 0 {
				continue
			}
			drilled, err := e.Drill(nets[0], a.Attr, a.Role, a.Instances[0].Value)
			if err != nil {
				t.Fatal(err)
			}
			if len(drilled.Filters) != 1 {
				t.Fatal("filter lost in drill")
			}
			return
		}
	}
	t.Skip("no categorical facet to drill")
}
