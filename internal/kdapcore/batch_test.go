package kdapcore

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"
)

// The batch storm: many goroutines fire a small, highly duplicated
// query mix (the zipf shape a real workload has) at two batched engines
// over different warehouses at once. Run under -race in CI. Every
// answer must be byte-identical to the solo answer for its query, and
// the duplication must actually surface as whole-request sharing.
func TestBatchedExploreStormFingerprints(t *testing.T) {
	type warehouse struct {
		name    string
		solo    *Engine
		batched *Engine
		queries []string
	}
	whs := []*warehouse{
		{
			name: "ebiz", solo: ebizEngine(), batched: ebizEngine(),
			queries: []string{"Columbus LCD", "projector", "Columbus"},
		},
		{
			name: "online", solo: awOnlineEngine(), batched: awOnlineEngine(),
			queries: []string{"Mountain Bikes", "Helmets", "Jerseys Touring"},
		},
	}
	opts := DefaultExploreOptions()

	type answer struct {
		fp  []byte
		err string
	}
	want := map[string]answer{} // warehouse|query → solo answer
	type testCase struct {
		wh *warehouse
		q  string
	}
	var cases []testCase
	for _, wh := range whs {
		wh.batched.SetBatching(time.Millisecond, 8)
		for _, q := range wh.queries {
			nets, err := wh.solo.Differentiate(q)
			if err != nil {
				t.Fatalf("%s %q: %v", wh.name, q, err)
			}
			if len(nets) == 0 {
				t.Fatalf("%s %q: no interpretations", wh.name, q)
			}
			a := answer{}
			if f, err := wh.solo.Explore(nets[0], opts); err != nil {
				a.err = err.Error()
			} else {
				a.fp = f.Fingerprint()
			}
			want[wh.name+"|"+q] = a
			cases = append(cases, testCase{wh, q})
		}
	}

	// 12 workers × 8 rounds over 6 distinct queries: heavy duplication,
	// interleaved across warehouses, batches forming and flushing
	// concurrently.
	const workers, rounds = 12, 8
	var wg sync.WaitGroup
	fail := make(chan string, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				tc := cases[(w*rounds+r)%len(cases)]
				nets, _, err := tc.wh.batched.DifferentiateBatchedCtx(context.Background(), tc.q)
				if err != nil {
					fail <- tc.wh.name + " " + tc.q + ": differentiate: " + err.Error()
					return
				}
				f, _, err := tc.wh.batched.ExploreBatchedCtx(context.Background(), nets[0], opts)
				a := want[tc.wh.name+"|"+tc.q]
				if err != nil {
					if a.err != err.Error() {
						fail <- tc.wh.name + " " + tc.q + ": explore: " + err.Error()
						return
					}
					continue
				}
				if !bytes.Equal(f.Fingerprint(), a.fp) {
					fail <- tc.wh.name + " " + tc.q + ": fingerprint diverged from solo"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
	for _, wh := range whs {
		st := wh.batched.BatchStats()
		if st.Batches == 0 {
			t.Errorf("%s: no batch ever released: %+v", wh.name, st)
		}
		if st.SharedExplores == 0 && st.SharedScans == 0 {
			t.Errorf("%s: a duplicated storm shared nothing: %+v", wh.name, st)
		}
	}
}

// A member whose context ends while gathering must leave cleanly with
// its own context error, and the batch must go on to serve the rest.
func TestBatchGatherCancellation(t *testing.T) {
	e := ebizEngine()
	e.SetBatching(50*time.Millisecond, 1000) // window long, cap unreachable
	nets, err := e.Differentiate("Columbus LCD")
	if err != nil || len(nets) == 0 {
		t.Fatalf("differentiate: %v (%d nets)", err, len(nets))
	}
	opts := DefaultExploreOptions()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.ExploreBatchedCtx(ctx, nets[0], opts); err != context.Canceled {
		t.Fatalf("cancelled gather returned %v, want context.Canceled", err)
	}

	// A live request joining the same batcher still completes.
	want, err := ebizEngine().Explore(nets[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.ExploreBatchedCtx(context.Background(), nets[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Fingerprint(), want.Fingerprint()) {
		t.Fatal("post-cancellation batched explore diverged from solo")
	}
}
