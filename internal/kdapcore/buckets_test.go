package kdapcore

import (
	"math"
	"testing"
	"testing/quick"

	"kdap/internal/olap"
	"kdap/internal/stats"
)

func vm(pairs ...float64) []olap.ValueMeasure {
	out := make([]olap.ValueMeasure, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, olap.ValueMeasure{Value: pairs[i], Measure: pairs[i+1]})
	}
	return out
}

func TestMakeIntervalsBasic(t *testing.T) {
	iv := MakeIntervals(vm(0, 1, 10, 1), 5)
	if iv.Buckets() != 5 {
		t.Fatalf("buckets = %d", iv.Buckets())
	}
	if iv.Edges[0] != 0 || iv.Edges[5] != 10 {
		t.Errorf("edges = %v", iv.Edges)
	}
	// Bucket membership.
	cases := map[float64]int{0: 0, 1.9: 0, 2: 1, 9.99: 4, 10: 4}
	for v, want := range cases {
		if got := iv.Find(v); got != want {
			t.Errorf("Find(%g) = %d, want %d", v, got, want)
		}
	}
	if iv.Find(-0.1) != -1 || iv.Find(10.1) != -1 {
		t.Error("out-of-domain values must map to -1")
	}
}

func TestMakeIntervalsDegenerate(t *testing.T) {
	if iv := MakeIntervals(nil, 10); iv.Buckets() != 1 {
		t.Error("empty input should give one bucket")
	}
	iv := MakeIntervals(vm(5, 1, 5, 2, 5, 3), 10)
	if iv.Buckets() != 1 {
		t.Errorf("constant domain buckets = %d", iv.Buckets())
	}
	if iv.Find(5) != 0 {
		t.Error("constant domain Find")
	}
}

func TestIntervalLabels(t *testing.T) {
	iv := MakeIntervals(vm(0, 1, 100, 1), 4)
	if iv.Label(0) != "0 - 25" {
		t.Errorf("Label(0) = %q", iv.Label(0))
	}
	iv2 := MakeIntervals(vm(0, 1, 1, 1), 2)
	if iv2.Label(0) != "0 - 0.50" {
		t.Errorf("fractional label = %q", iv2.Label(0))
	}
}

func TestAggregateSeries(t *testing.T) {
	iv := MakeIntervals(vm(0, 0, 10, 0), 2) // edges 0,5,10
	series := iv.AggregateSeries(vm(1, 10, 2, 20, 6, 5, 10, 7, 99, 100))
	if len(series) != 2 {
		t.Fatalf("series = %v", series)
	}
	if series[0] != 30 || series[1] != 12 {
		t.Errorf("series = %v, want [30 12] (out-of-domain dropped)", series)
	}
}

func TestMakeDistinctIntervals(t *testing.T) {
	vals := vm(1, 1, 3, 1, 3, 2, 7, 1)
	iv := MakeDistinctIntervals(vals)
	if iv.Buckets() != 3 {
		t.Fatalf("distinct buckets = %d (%v)", iv.Buckets(), iv.Edges)
	}
	s := iv.AggregateSeries(vals)
	if s[0] != 1 || s[1] != 3 || s[2] != 1 {
		t.Errorf("distinct series = %v", s)
	}
	if MakeDistinctIntervals(nil).Buckets() != 1 {
		t.Error("empty distinct should give one bucket")
	}
	if MakeDistinctIntervals(vm(4, 1)).Buckets() != 1 {
		t.Error("single distinct value should give one bucket")
	}
}

// Property: bucketization partitions the measure mass — the series always
// sums to the total measure of in-domain values.
func TestAggregateSeriesMassConservation(t *testing.T) {
	f := func(seed uint64, nRaw uint8, bRaw uint8) bool {
		rng := stats.NewRNG(seed)
		n := int(nRaw)%200 + 1
		b := int(bRaw)%64 + 1
		vals := make([]olap.ValueMeasure, n)
		var total float64
		for i := range vals {
			vals[i] = olap.ValueMeasure{Value: rng.Float64() * 1000, Measure: rng.Float64() * 10}
			total += vals[i].Measure
		}
		iv := MakeIntervals(vals, b)
		var got float64
		for _, s := range iv.AggregateSeries(vals) {
			got += s
		}
		return math.Abs(got-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Find is consistent with the edge array — every value lands in
// the bucket whose edges bracket it.
func TestFindConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		vals := make([]olap.ValueMeasure, 50)
		for i := range vals {
			vals[i] = olap.ValueMeasure{Value: rng.Float64() * 100}
		}
		iv := MakeIntervals(vals, 1+rng.Intn(30))
		for _, vmx := range vals {
			b := iv.Find(vmx.Value)
			if b < 0 {
				return false // in-domain by construction
			}
			if vmx.Value < iv.Edges[b] || vmx.Value > iv.Edges[b+1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{12: "12", -3: "-3", 2.5: "2.50", 0: "0"}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%g) = %q, want %q", in, got, want)
		}
	}
}
