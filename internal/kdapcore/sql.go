package kdapcore

import (
	"fmt"
	"sort"
	"strings"

	"kdap/internal/olap"
)

// SQL renders the star net as the SQL aggregation query it stands for —
// the statement a conventional OLAP tool would have required the analyst
// to write by hand (the paper's §1 motivation). Each hit group
// contributes its join path's chain of INNER JOINs plus an IN predicate.
// Join chains that share a prefix from the fact table share table
// aliases (the same TRANS header join serves both a Store and a Buyer
// path); where chains diverge onto the same table, role-suffixed aliases
// keep the interpretations apart, exactly as §4.2 requires. Numeric
// predicates append to the WHERE clause.
//
// The output is standard SQL over the warehouse's schema, intended for
// explanation and for porting a KDAP interpretation onto an external
// RDBMS; the in-memory executor does not parse it.
func (sn *StarNet) SQL(measure olap.Measure, agg olap.Agg, factTable string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SELECT %s(%s)\nFROM %s", agg, measureSQL(measure), quoteIdent(factTable))

	type joinClause struct {
		table, alias, fromAlias, fromCol, toCol string
	}
	aliasByPrefix := map[string]string{"": factTable}
	usedAliases := map[string]bool{factTable: true}
	var joins []joinClause
	var preds []string

	// introduce renders the join chain of one path (fact outward),
	// sharing aliases on common hop-prefixes, and returns the alias of
	// the path's source table.
	introduce := func(role string, pathLen int, hopAt func(i int) (table, fromCol, toCol, key string)) string {
		prefix := ""
		prevAlias := factTable
		for i := 0; i < pathLen; i++ {
			table, fromCol, toCol, key := hopAt(i)
			prefix += "|" + key
			alias, ok := aliasByPrefix[prefix]
			if !ok {
				alias = table
				if usedAliases[alias] {
					alias = table + "_" + strings.ToLower(role)
				}
				for n := 2; usedAliases[alias]; n++ {
					alias = fmt.Sprintf("%s_%d", table, n)
				}
				usedAliases[alias] = true
				aliasByPrefix[prefix] = alias
				joins = append(joins, joinClause{
					table: table, alias: alias, fromAlias: prevAlias,
					fromCol: fromCol, toCol: toCol,
				})
			}
			prevAlias = alias
		}
		return prevAlias
	}

	for _, bg := range sn.Groups {
		hops := bg.Path.Hops
		prevAlias := introduce(bg.Path.Role, len(hops), func(i int) (string, string, string, string) {
			hop := hops[len(hops)-1-i].Reverse() // oriented away from the fact
			return hop.ToTable, hop.FromCol, hop.ToCol, hop.String()
		})
		vals := make([]string, 0, len(bg.Group.Hits))
		for _, h := range bg.Group.Hits {
			vals = append(vals, quoteValue(h.Value.Text()))
		}
		sort.Strings(vals)
		preds = append(preds, fmt.Sprintf("%s.%s IN (%s)",
			quoteIdent(prevAlias), quoteIdent(bg.Group.Attr), strings.Join(vals, ", ")))
	}

	for _, nf := range sn.Filters {
		if nf.OnFact {
			preds = append(preds, fmt.Sprintf("%s.%s %s %g",
				quoteIdent(factTable), quoteIdent(nf.Attr.Attr), nf.Op, nf.Value))
			continue
		}
		hops := nf.Path.Hops
		alias := introduce(nf.Role, len(hops), func(i int) (string, string, string, string) {
			hop := hops[len(hops)-1-i].Reverse()
			return hop.ToTable, hop.FromCol, hop.ToCol, hop.String()
		})
		preds = append(preds, fmt.Sprintf("%s.%s %s %g",
			quoteIdent(alias), quoteIdent(nf.Attr.Attr), nf.Op, nf.Value))
	}
	for _, j := range joins {
		fmt.Fprintf(&b, "\n  JOIN %s AS %s ON %s.%s = %s.%s",
			quoteIdent(j.table), quoteIdent(j.alias),
			quoteIdent(j.fromAlias), quoteIdent(j.fromCol),
			quoteIdent(j.alias), quoteIdent(j.toCol))
	}
	if len(preds) > 0 {
		fmt.Fprintf(&b, "\nWHERE %s", strings.Join(preds, "\n  AND "))
	}
	b.WriteString(";")
	return b.String()
}

// measureSQL renders the measure's expression; Measure carries a Go
// closure rather than an AST, so the measure's name stands in as the
// column expression.
func measureSQL(m olap.Measure) string {
	if m.Name == "" {
		return "*"
	}
	return quoteIdent(m.Name)
}

// quoteIdent double-quotes an SQL identifier.
func quoteIdent(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// quoteValue single-quotes an SQL string literal.
func quoteValue(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
