package kdapcore

import (
	"math"
	"strings"
	"testing"
)

// Explain must reconstruct exactly the score the standard ranking
// assigned.
func TestExplainMatchesScore(t *testing.T) {
	e := ebizEngine()
	for _, q := range []string{"Columbus LCD", "San Jose", "Projectors"} {
		nets, err := e.Differentiate(q)
		if err != nil {
			t.Fatal(err)
		}
		for i, sn := range nets {
			if i > 5 {
				break
			}
			ex := sn.Explain()
			if math.Abs(ex.Score-sn.Score) > 1e-12 {
				t.Errorf("%q net %d: explained %.9f, ranked %.9f", q, i, ex.Score, sn.Score)
			}
			if len(ex.Groups) != len(sn.Groups) {
				t.Errorf("%q net %d: group count", q, i)
			}
			var sum float64
			for _, g := range ex.Groups {
				sum += g.Contribution
			}
			if math.Abs(sum-ex.GroupSum) > 1e-12 {
				t.Errorf("%q net %d: contributions don't add up", q, i)
			}
		}
	}
}

func TestExplainPhraseAndRendering(t *testing.T) {
	e := ebizEngine()
	nets, _ := e.Differentiate("San Jose")
	ex := nets[0].Explain()
	if len(ex.Groups) != 1 || ex.Groups[0].Phrase != "San Jose" {
		t.Fatalf("explanation = %+v", ex)
	}
	out := ex.String()
	if !strings.Contains(out, "|SN|²=1") || !strings.Contains(out, `phrase="San Jose"`) {
		t.Errorf("rendering: %s", out)
	}
}

func TestExplainEmptyNet(t *testing.T) {
	ex := (&StarNet{}).Explain()
	if ex.Score != 0 || ex.NumNorm != 0 {
		t.Errorf("empty net explanation: %+v", ex)
	}
}
