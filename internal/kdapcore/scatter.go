package kdapcore

// The cluster seam: distributed execution replaces exactly one stage of
// the pipeline — fact-row-set materialization (the semijoin / numeric
// filter layer) — and nothing else. A RowScatterer fans the constraint
// set out to worker nodes that each own a contiguous fact-row range and
// returns the gathered rows in ascending row order, which makes the
// result byte-identical to a local scan: membership of each row is
// decided per-row by the same deterministic predicate evaluation, and
// the concatenation of contiguous ranges in shard order is exactly the
// full-scan enumeration order. Every float kernel (aggregate, group-by,
// numeric series) still runs on the coordinator over the gathered rows
// slice, so kernel parenthesization — and therefore every last bit of
// the facet output — is untouched by distribution.
//
// Degradation is typed, not silent: a scatter that loses a node (and
// has no fallback) returns the surviving rows inside a *DegradedError.
// The error path guarantees a degraded row set is never cached as a
// materialized subspace and never shared as a success; only an explore
// that opted in via ExploreOptions.PartialOnDeadline accepts the rows,
// and the failed nodes surface in Facets.DegradedNodes.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"kdap/internal/olap"
)

// RowScatterer materializes a constrained-and-filtered fact-row set by
// scattering per-node shard ranges to workers and gathering the partial
// row sets in shard order. Implementations must return rows ascending
// and exactly equal to what Executor.FactRowsCtx + filter application
// would produce locally; internal/cluster provides the implementation.
type RowScatterer interface {
	ScatterRows(ctx context.Context, cs []olap.Constraint, filters []NumericFilter) ([]int, error)
}

// SetScatter routes the engine's fact-row materializations (subspace
// semijoins and roll-up spaces) through a cluster scatter-gatherer.
// Configure at startup, before serving queries; nil restores local
// scans.
func (e *Engine) SetScatter(s RowScatterer) { e.scatter = s }

// ScatterEnabled reports whether a RowScatterer is configured.
func (e *Engine) ScatterEnabled() bool { return e.scatter != nil }

// DegradedError carries a partial scatter result: the rows gathered
// from surviving nodes (still ascending, still exact over the ranges
// that answered) plus the nodes that contributed nothing. It travels
// the error path on purpose — caches and singleflight treat it as a
// failure, so a degraded row set can never masquerade as the
// materialized subspace — and only an explore running with
// PartialOnDeadline unwraps it into a partial answer.
type DegradedError struct {
	// Nodes lists the worker addresses that failed (deadline, refusal,
	// connection loss) with no fallback available.
	Nodes []string
	// Rows is the gathered row set over the surviving ranges.
	Rows []int
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("kdap: scatter degraded, %d node(s) lost: %s",
		len(e.Nodes), strings.Join(e.Nodes, ", "))
}

// degradeKey carries the per-explore degraded-node collector through
// the context.
type degradeKey struct{}

// degradeCollector accumulates the failed nodes of every degraded
// scatter one explore performs (the base semijoin and each roll-up
// space scatter independently). Mutex-guarded: parallel attribute
// scoring may surface degraded roll-ups concurrently.
type degradeCollector struct {
	mu    sync.Mutex
	nodes map[string]bool
}

func (dc *degradeCollector) add(nodes []string) {
	dc.mu.Lock()
	if dc.nodes == nil {
		dc.nodes = make(map[string]bool, len(nodes))
	}
	for _, n := range nodes {
		dc.nodes[n] = true
	}
	dc.mu.Unlock()
}

// failed returns the sorted, deduplicated failed-node list (nil when no
// scatter degraded).
func (dc *degradeCollector) failed() []string {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if len(dc.nodes) == 0 {
		return nil
	}
	out := make([]string, 0, len(dc.nodes))
	for n := range dc.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// withDegradeCollector arms ctx to accept degraded scatters.
func withDegradeCollector(ctx context.Context, dc *degradeCollector) context.Context {
	return context.WithValue(ctx, degradeKey{}, dc)
}

// degradedRows unwraps a DegradedError into its partial row set iff the
// context carries a collector (i.e. the running explore opted into
// partial answers); the failed nodes are recorded for attribution. For
// every other caller the error stays an error.
func degradedRows(ctx context.Context, err error) ([]int, bool) {
	var de *DegradedError
	if !errors.As(err, &de) {
		return nil, false
	}
	dc, _ := ctx.Value(degradeKey{}).(*degradeCollector)
	if dc == nil {
		return nil, false
	}
	dc.add(de.Nodes)
	return de.Rows, true
}

// FactRowsRange is the worker-side scan primitive: the fact rows in
// [lo, hi) satisfying the constraints, with numeric filters applied
// per-row — exactly the slice of the full materialization that falls in
// the range. Workers evaluate it node-locally (dimension tables are
// replicated, so the semijoin never leaves the node); the coordinator
// uses it for hedged and fallback re-scans of a lost node's range.
func (e *Engine) FactRowsRange(ctx context.Context, cs []olap.Constraint, filters []NumericFilter, lo, hi int) ([]int, error) {
	rows, err := e.exec.FactRowsInRange(ctx, cs, lo, hi)
	if err != nil {
		return nil, err
	}
	if len(rows) > 0 && len(filters) > 0 {
		rows, err = e.applyFiltersCtx(ctx, rows, filters)
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
