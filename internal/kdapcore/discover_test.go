package kdapcore

import (
	"testing"

	"kdap/internal/schemagraph"
)

func TestDiscoverRanksSubspaces(t *testing.T) {
	e := ebizEngine()
	level := schemagraph.AttrRef{Table: "PGROUP", Attr: "GroupName"}
	out, err := e.Discover(level, "Product", Surprise, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no discoveries")
	}
	if len(out) > 5 {
		t.Errorf("topK ignored: %d", len(out))
	}
	for i, d := range out {
		if d.Rows <= 0 || d.Aggregate <= 0 {
			t.Errorf("discovery %d: rows=%d agg=%g", i, d.Rows, d.Aggregate)
		}
		if d.BestAttr == (schemagraph.AttrRef{}) {
			t.Errorf("discovery %d has no best attribute", i)
		}
		if i > 0 && out[i].Score > out[i-1].Score {
			t.Error("discoveries not sorted")
		}
	}
}

func TestDiscoverCityLevel(t *testing.T) {
	e := ebizEngine()
	level := schemagraph.AttrRef{Table: "LOC", Attr: "City"}
	out, err := e.Discover(level, "Store", Surprise, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("discoveries = %d", len(out))
	}
	// The dataset skews Columbus toward televisions and California
	// cities toward LCD gear, so at least one of the skewed cities should
	// surface among the most surprising.
	skewed := map[string]bool{
		"Columbus": true, "San Jose": true, "San Francisco": true, "Los Angeles": true,
	}
	found := false
	for _, d := range out {
		if skewed[d.Value.Text()] {
			found = true
		}
	}
	if !found {
		t.Errorf("no skewed city among top discoveries: %v", out)
	}
}

func TestDiscoverErrors(t *testing.T) {
	e := ebizEngine()
	level := schemagraph.AttrRef{Table: "PGROUP", Attr: "GroupName"}
	if _, err := e.Discover(level, "Product", Surprise, 0); err == nil {
		t.Error("topK=0 accepted")
	}
	if _, err := e.Discover(schemagraph.AttrRef{Table: "GHOST", Attr: "X"}, "Product", Surprise, 3); err == nil {
		t.Error("missing table accepted")
	}
}

func TestDiscoverBellwether(t *testing.T) {
	e := ebizEngine()
	level := schemagraph.AttrRef{Table: "LOC", Attr: "State"}
	out, err := e.Discover(level, "Store", Bellwether, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no bellwether discoveries")
	}
	// Bellwether scores are correlations; top ones should be positive.
	if out[0].Score <= 0 {
		t.Errorf("top bellwether score %g", out[0].Score)
	}
}
