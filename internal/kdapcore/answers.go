package kdapcore

// Engine-level answer caching: finished Differentiate and Explore
// results are kept in two versioned, TTL-aware, size-bounded stores
// (cache.Answers) keyed by a canonicalized identity — normalized
// keywords + rank method for Differentiate, subspace signature + every
// result-shaping option for Explore. Lookups and fills go through
// singleflight, so a storm of identical concurrent requests performs
// the computation once; the rest wait and share it. Three rules keep
// cached answers honest:
//
//   - cancelled computations are never cached or shared (PR 3's rule,
//     enforced by cache.Group/cache.Answers);
//   - partial (deadline-degraded) facets are never cached — a complete
//     answer must not be masked by a degraded one;
//   - every entry carries the data version current when its computation
//     began, so InvalidateAnswers after a dataset reload atomically
//     retires everything computed before it.
//
// Cached values ([]*StarNet, *Facets) are shared between callers and
// treated as immutable — the established contract for both types once
// the pipeline returns them (drills build new nets, they never mutate).

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"time"

	"kdap/internal/cache"
	"kdap/internal/telemetry"
)

// answerCacheTTLResolution is documentation-only: TTLs are exact, see
// cache.Answers.

// CacheOutcome classifies how an answer-cached call was served.
type CacheOutcome int

const (
	// CacheBypass: no answer cache is configured, or the call is not
	// cacheable (an Explore with a CustomScore func has no canonical
	// key).
	CacheBypass CacheOutcome = iota
	// CacheMiss: this call performed the computation (and cached it).
	CacheMiss
	// CacheHit: served from the store without computing.
	CacheHit
	// CacheCoalesced: an identical call was already in flight; this one
	// waited and shared its result.
	CacheCoalesced
)

// String renders the outcome as its marker-header token.
func (o CacheOutcome) String() string {
	switch o {
	case CacheMiss:
		return "miss"
	case CacheHit:
		return "hit"
	case CacheCoalesced:
		return "coalesced"
	default:
		return "bypass"
	}
}

// SetAnswerCache enables the engine's answer cache: up to entries
// finished results per phase (Differentiate and Explore each), expiring
// ttl after insertion (0 = no expiry). entries <= 0 disables caching.
// Configure at startup — not safe to call concurrently with queries.
func (e *Engine) SetAnswerCache(entries int, ttl time.Duration) {
	if entries <= 0 {
		e.diffAnswers, e.explAnswers, e.exploreDeps = nil, nil, nil
		return
	}
	e.diffAnswers = cache.NewAnswers[[]*StarNet](entries, ttl, netsFootprint)
	e.explAnswers = cache.NewAnswers[*Facets](entries, ttl, facetsFootprint)
	// The explore-key → star-net registry behind delta-scoped append
	// invalidation (see ingest.go). Sized to the store: a key whose
	// provenance has been evicted here is evicted conservatively there.
	e.exploreDeps = cache.NewClock[string, *StarNet](entries)
}

// AnswerCacheEnabled reports whether SetAnswerCache has been configured.
func (e *Engine) AnswerCacheEnabled() bool { return e.diffAnswers != nil }

// AnswerCacheStats snapshots both answer stores' counters; ok is false
// when the cache is disabled.
func (e *Engine) AnswerCacheStats() (diff, expl cache.AnswerStats, ok bool) {
	if e.diffAnswers == nil {
		return cache.AnswerStats{}, cache.AnswerStats{}, false
	}
	return e.diffAnswers.Stats(), e.explAnswers.Stats(), true
}

// InvalidateAnswers advances the engine's data version, retiring every
// cached answer at once. Call it when the backing dataset changes (a
// snapshot reload, a re-ingest): answers computed against the old data
// — including fills still in flight — can never be served afterwards.
func (e *Engine) InvalidateAnswers() {
	e.dataVersion.Add(1)
	if e.diffAnswers != nil {
		e.diffAnswers.Bump()
		e.explAnswers.Bump()
	}
}

// DataVersion returns the engine's dataset version stamp. It advances
// on InvalidateAnswers and participates in the HTTP layer's ETags, so
// a reload also invalidates client-side conditional caching.
func (e *Engine) DataVersion() uint64 { return e.dataVersion.Load() }

// CanonicalQuery normalizes a keyword query to its cache identity:
// whitespace runs collapse to single spaces. Token case is preserved —
// filter tokens like "UnitPrice>1000" resolve column names
// case-sensitively, so case folding here could change meaning.
func CanonicalQuery(q string) string { return strings.Join(strings.Fields(q), " ") }

// diffAnswerKey is the differentiate store key: rank method + the
// canonicalized query.
func diffAnswerKey(query string, method RankMethod) string {
	return strconv.Itoa(int(method)) + "\x1f" + CanonicalQuery(query)
}

// ExploreCacheKey renders the canonical cache identity of an Explore
// call: the net's subspace signature plus every option that shapes the
// result. ok is false when the call is uncacheable (a CustomScore func
// cannot be canonicalized). Parallel, PartialOnDeadline, and
// SegmentCacheMB are deliberately excluded — Parallel and
// SegmentCacheMB produce identical output by contract (they shape
// wall-clock and memory use only), and partial results are never
// stored.
func ExploreCacheKey(sn *StarNet, o ExploreOptions) (key string, ok bool) {
	if o.CustomScore != nil {
		return "", false
	}
	var b strings.Builder
	b.WriteString(sn.Signature())
	sep := func() { b.WriteByte('\x1f') }
	sep()
	b.WriteString(strconv.Itoa(int(o.Mode)))
	for _, n := range []int{o.TopKAttrs, o.TopKInstances, o.Buckets, o.DisplayIntervals, o.AnnealIters} {
		sep()
		b.WriteString(strconv.Itoa(n))
	}
	sep()
	b.WriteString(strconv.FormatFloat(o.SkewLimit, 'g', -1, 64))
	sep()
	b.WriteString(strconv.FormatUint(o.Seed, 10))
	sep()
	b.WriteString(strconv.FormatBool(o.RankCorrelation))
	if len(o.Pinned) > 0 {
		pinned := make([]string, len(o.Pinned))
		for i, p := range o.Pinned {
			pinned[i] = p.Table + "." + p.Attr
		}
		sort.Strings(pinned)
		for _, p := range pinned {
			sep()
			b.WriteString(p)
		}
	}
	return b.String(), true
}

// DifferentiateCachedCtx is DifferentiateCtx through the answer cache,
// reporting how the answer was served. Identical concurrent queries
// collapse into one pipeline run; repeats within the TTL are served
// from the store. The returned nets are shared — treat as immutable.
func (e *Engine) DifferentiateCachedCtx(ctx context.Context, query string) ([]*StarNet, CacheOutcome, error) {
	return e.differentiateCached(ctx, query, Standard)
}

func (e *Engine) differentiateCached(ctx context.Context, query string, method RankMethod) ([]*StarNet, CacheOutcome, error) {
	if e.diffAnswers == nil {
		nets, err := e.differentiateRanked(ctx, query, method)
		return nets, CacheBypass, err
	}
	key := diffAnswerKey(query, method)
	_, sp := telemetry.StartSpan(ctx, "cache_lookup")
	nets, ok := e.diffAnswers.Get(key)
	sp.End()
	if ok {
		return nets, CacheHit, nil
	}
	nets, outcome, err := e.diffAnswers.Compute(ctx, key, func(ctx context.Context) ([]*StarNet, bool, error) {
		nets, err := e.differentiateRanked(ctx, query, method)
		return nets, err == nil, err
	})
	return nets, fromAnswerOutcome(outcome), err
}

// ExploreCachedCtx is ExploreCtx through the answer cache, reporting
// how the answer was served. The returned facets are a shallow copy
// bound to the caller's own net; their inner structure is shared and
// must be treated as immutable.
func (e *Engine) ExploreCachedCtx(ctx context.Context, sn *StarNet, opts ExploreOptions) (*Facets, CacheOutcome, error) {
	if e.explAnswers == nil {
		f, err := e.exploreUncached(ctx, sn, opts)
		return f, CacheBypass, err
	}
	key, cacheable := ExploreCacheKey(sn, opts)
	if !cacheable {
		f, err := e.exploreUncached(ctx, sn, opts)
		return f, CacheBypass, err
	}
	_, sp := telemetry.StartSpan(ctx, "cache_lookup")
	f, ok := e.explAnswers.Get(key)
	sp.End()
	if ok {
		// The key's provenance was registered when the entry was first
		// computed; re-registering per hit would put a mutex acquisition
		// on the hot path (measured as a warm-hit + QPS regression). If
		// the registry entry has aged out in the meantime, an append
		// simply evicts this key conservatively (ingest.go).
		return rebindFacets(f, sn), CacheHit, nil
	}
	// Record the key's provenance before the fill so a streaming append
	// can decide whether its rows touch this answer's sub-dataspace
	// (ingest.go) — present from the moment the entry becomes visible.
	// Nets are immutable once built, so sharing the pointer is safe.
	e.exploreDeps.Put(key, sn)
	f, outcome, err := e.explAnswers.Compute(ctx, key, func(ctx context.Context) (*Facets, bool, error) {
		f, err := e.exploreUncached(ctx, sn, opts)
		if err != nil {
			return nil, false, err
		}
		// A deadline-degraded result answers this caller but must not
		// shadow the complete answer for everyone after it.
		return f, !f.Partial, nil
	})
	if err != nil {
		return nil, fromAnswerOutcome(outcome), err
	}
	return rebindFacets(f, sn), fromAnswerOutcome(outcome), nil
}

// fromAnswerOutcome maps the store's outcome onto the engine's.
func fromAnswerOutcome(o cache.Outcome) CacheOutcome {
	switch o {
	case cache.OutcomeHit:
		return CacheHit
	case cache.OutcomeCoalesced:
		return CacheCoalesced
	default:
		return CacheMiss
	}
}

// rebindFacets returns a shallow copy of cached facets bound to the
// caller's own star net: the stored entry's Net points at whichever
// equivalent net computed it first, which may belong to another
// session.
func rebindFacets(f *Facets, sn *StarNet) *Facets {
	cp := *f
	cp.Net = sn
	return &cp
}

// netsFootprint approximates the resident bytes of a ranked star-net
// list for the answer cache's bytes gauge: struct and slice headers
// plus string payloads, not a precise deep size.
func netsFootprint(nets []*StarNet) int {
	n := 24
	for _, sn := range nets {
		n += 120 + len(sn.Query)
		for i := range sn.Groups {
			bg := &sn.Groups[i]
			n += 96 + len(bg.Group.Phrase)
			for _, h := range bg.Group.Hits {
				n += 48 + len(h.Value.Text())
			}
		}
		n += 48 * len(sn.Filters)
	}
	return n
}

// facetsFootprint approximates the resident bytes of a facets tree.
func facetsFootprint(f *Facets) int {
	n := 96
	for _, d := range f.Dimensions {
		n += 64 + len(d.Dimension)
		for _, a := range d.Attributes {
			n += 128 + len(a.Attr.Table) + len(a.Attr.Attr) + len(a.Role)
			for _, inst := range a.Instances {
				n += 80 + len(inst.Label)
			}
		}
	}
	return n
}
