package kdapcore

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"kdap/internal/cache"
	"kdap/internal/fulltext"
	"kdap/internal/olap"
	"kdap/internal/schemagraph"
	"kdap/internal/shard"
	"kdap/internal/telemetry"
	"kdap/internal/telemetry/profile"
)

// Engine is a KDAP session over one warehouse: it answers keyword queries
// with ranked star nets (differentiate) and builds dynamic facets over a
// chosen net's sub-dataspace (explore). An Engine is safe for concurrent
// use.
type Engine struct {
	graph   *schemagraph.Graph
	index   *fulltext.Index
	exec    *olap.Executor
	measure olap.Measure
	agg     olap.Agg

	hitLim hitLimits
	netLim netLimits
	// sim holds the text-relevance model behind an atomic pointer: the
	// Engine is documented safe for concurrent use, and SetTextSimilarity
	// may race with in-flight Differentiate calls (a nil pointer means
	// the default TF-IDF model).
	sim atomic.Pointer[fulltext.Similarity]

	// Materialized sub-dataspaces, keyed by star-net signature. Repeated
	// exploration of the same interpretation — the common interactive
	// pattern of mode switches and back-navigation — skips the semijoin.
	// The paper's §7 notes subspace aggregation as the cost to optimize;
	// this is the simplest materialization that helps an interactive
	// session. Second-chance eviction keeps the interpretations the
	// session keeps returning to. Each entry records the fact length it
	// covers; entries left behind by a streaming append are extended
	// over just the appended rows at next fetch, never rebuilt.
	rowsCache *cache.Clock[string, rowsEntry]

	// rowsFlight collapses concurrent materializations of the same row
	// set (subspace semijoins and roll-up spaces alike) into one scan.
	rowsFlight cache.Group[string, []int]

	// scatter, when set (SetScatter), routes fact-row materializations
	// through a cluster scatter-gatherer instead of local scans. See
	// scatter.go for the exactness and degradation contract.
	scatter RowScatterer

	// Answer caches: finished Differentiate and Explore results, enabled
	// by SetAnswerCache (nil = disabled). See answers.go.
	diffAnswers *cache.Answers[[]*StarNet]
	explAnswers *cache.Answers[*Facets]
	// dataVersion stamps the dataset generation; InvalidateAnswers
	// advances it, retiring cached answers and HTTP ETags together.
	dataVersion atomic.Uint64

	// Shared-scan batching state (see batch.go): the gather scheduler,
	// whole-request singleflights for engines running without an answer
	// cache, and the counters BatchStats reports.
	batch         atomic.Pointer[batcher]
	explFlight    cache.Group[string, *Facets]
	diffFlight    cache.Group[string, []*StarNet]
	batchSizeHist *telemetry.Histogram
	scanShared    atomic.Int64
	explShared    atomic.Int64
	diffShared    atomic.Int64

	// Streaming-ingest state (see ingest.go): the single-writer append
	// gate, the per-append sequence that feeds HTTP revalidation tags,
	// the explore-key → star-net registry behind delta-scoped answer
	// eviction, and the kdap_ingest_* counters.
	ingestMu      sync.Mutex
	ingestSeq     atomic.Uint64
	exploreDeps   *cache.Clock[string, *StarNet]
	ingestBatches atomic.Int64
	ingestRows    atomic.Int64
	ingestTerms   atomic.Int64
	ingestEvicted atomic.Int64
	ingestKept    atomic.Int64
}

// rowsEntry is one materialized fact-row set plus the fact length it
// was computed (or last extended) against.
type rowsEntry struct {
	rows []int
	upTo int
}

// rowsCacheCap bounds the subspace cache.
const rowsCacheCap = 128

// NewEngine creates an engine. The measure and aggregation define the
// pre-defined aggregate of §3 (the experiments use SUM of revenue).
func NewEngine(g *schemagraph.Graph, ix *fulltext.Index, m olap.Measure, agg olap.Agg) *Engine {
	return &Engine{
		graph:     g,
		index:     ix,
		exec:      olap.NewExecutor(g),
		measure:   m,
		agg:       agg,
		hitLim:    defaultHitLimits(),
		netLim:    defaultNetLimits(),
		rowsCache: cache.NewClock[string, rowsEntry](rowsCacheCap),
		// Batch sizes are small integers, not latencies: bucket by count.
		batchSizeHist: telemetry.NewHistogram([]float64{1, 2, 4, 8, 16, 32, 64}),
	}
}

// SetShards partitions the engine's fact table into n contiguous
// row-range shards with zone maps, enabling shard-pruned scatter-gather
// on semijoins, numeric filters, and series extraction (n <= 1 restores
// monolithic scans). Facet output is byte-identical either way —
// sharding only changes what gets scanned. Call it at startup, before
// serving queries; it is safe later too, but materialized subspaces in
// the rows cache keep the rows they were built with.
func (e *Engine) SetShards(n int) { e.exec.SetShards(n) }

// cacheBudgeter is implemented by segment backings (internal/persist)
// whose page cache runs under an adjustable byte budget.
type cacheBudgeter interface {
	SetCacheBudget(bytes int64)
}

// applySegmentBudget threads ExploreOptions.SegmentCacheMB to the fact
// table's segment backing. A no-op for resident facts, non-positive
// budgets, and backings without an adjustable cache.
func (e *Engine) applySegmentBudget(opts ExploreOptions) {
	if opts.SegmentCacheMB <= 0 {
		return
	}
	if b, ok := e.exec.FactBacking().(cacheBudgeter); ok {
		b.SetCacheBudget(int64(opts.SegmentCacheMB) << 20)
	}
}

// SetTextSimilarity switches the text-relevance model used when probing
// the full-text index (default: the classic TF-IDF the paper's prototype
// used). The Figure 4 ablation compares ranking quality across models.
// Safe to call while queries are in flight: an in-flight Differentiate
// sees either the old or the new model, never a torn write.
func (e *Engine) SetTextSimilarity(s fulltext.Similarity) { e.sim.Store(&s) }

// textSimilarity loads the current text-relevance model (defaults to
// classic TF-IDF when SetTextSimilarity has never been called).
func (e *Engine) textSimilarity() fulltext.Similarity {
	if p := e.sim.Load(); p != nil {
		return *p
	}
	return fulltext.ClassicTFIDF
}

// Graph returns the engine's schema graph.
func (e *Engine) Graph() *schemagraph.Graph { return e.graph }

// Executor returns the engine's OLAP executor.
func (e *Engine) Executor() *olap.Executor { return e.exec }

// Measure returns the engine's measure.
func (e *Engine) Measure() olap.Measure { return e.measure }

// Agg returns the engine's aggregation function.
func (e *Engine) Agg() olap.Agg { return e.agg }

// Differentiate runs the first KDAP phase with the paper's standard
// ranking: keyword query in, ranked candidate star nets out.
func (e *Engine) Differentiate(query string) ([]*StarNet, error) {
	return e.DifferentiateRankedCtx(context.Background(), query, Standard)
}

// DifferentiateCtx is Differentiate under a context; when a
// telemetry.Trace is attached, each pipeline stage is recorded as a
// span (filter_extract → hit_probe → phrase_merge → seed_enum →
// starnet_gen → rank).
func (e *Engine) DifferentiateCtx(ctx context.Context, query string) ([]*StarNet, error) {
	return e.DifferentiateRankedCtx(ctx, query, Standard)
}

// DifferentiateRanked is Differentiate with an explicit ranking method
// (the Figure 4 evaluation sweeps all four).
func (e *Engine) DifferentiateRanked(query string, method RankMethod) ([]*StarNet, error) {
	return e.DifferentiateRankedCtx(context.Background(), query, method)
}

// DifferentiateRankedCtx is the traced differentiate pipeline, served
// through the answer cache when one is configured (SetAnswerCache).
func (e *Engine) DifferentiateRankedCtx(ctx context.Context, query string, method RankMethod) ([]*StarNet, error) {
	nets, _, err := e.differentiateCached(ctx, query, method)
	return nets, err
}

// differentiateRanked is the uncached differentiate pipeline.
func (e *Engine) differentiateRanked(ctx context.Context, query string, method RankMethod) ([]*StarNet, error) {
	ctx, root := telemetry.StartSpan(ctx, "differentiate")
	defer root.End()

	tokens := splitKeywords(query)
	if len(tokens) == 0 {
		return nil, fmt.Errorf("kdap: empty keyword query")
	}
	_, sp := telemetry.StartSpan(ctx, "filter_extract")
	filters, keywords, err := e.extractFilters(tokens)
	sp.End()
	if err != nil {
		return nil, err
	}
	if len(keywords) == 0 {
		// Pure-predicate query: one interpretation over the whole
		// dataspace, sliced by the filters alone.
		if len(filters) == 0 {
			return nil, fmt.Errorf("kdap: empty keyword query")
		}
		return []*StarNet{{Query: query, Filters: filters, Score: 1}}, nil
	}
	sim := e.textSimilarity()

	_, sp = telemetry.StartSpan(ctx, "hit_probe")
	sets, err := buildHitSets(ctx, e.index, keywords, e.hitLim, sim)
	sp.End()
	if err != nil {
		return nil, err
	}

	_, sp = telemetry.StartSpan(ctx, "phrase_merge")
	merged, err := mergePhrases(ctx, e.index, sets, keywords, sim)
	sp.End()
	if err != nil {
		return nil, err
	}

	_, sp = telemetry.StartSpan(ctx, "seed_enum")
	seeds := enumerateSeeds(sets, merged, e.netLim.maxSeeds)
	sp.End()
	if len(seeds) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	_, sp = telemetry.StartSpan(ctx, "starnet_gen")
	nets := generateStarNets(e.graph, query, seeds, e.netLim)
	for _, sn := range nets {
		sn.Filters = filters
	}
	sp.End()
	profile.FromContext(ctx).AddCandidates(len(nets))
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	_, sp = telemetry.StartSpan(ctx, "rank")
	rankStarNets(e.graph, nets, method)
	sp.End()
	return nets, nil
}

// splitKeywords splits a raw query on whitespace, keeping original word
// forms (normalization happens inside the text index).
func splitKeywords(query string) []string {
	return strings.Fields(query)
}

// SuggestKeywords returns, for each query keyword that matches nothing
// in the index (even with prefix expansion), up to max "did you mean"
// term suggestions within edit distance 2. Numeric predicate tokens are
// skipped.
func (e *Engine) SuggestKeywords(query string, max int) map[string][]string {
	out := make(map[string][]string)
	for _, kw := range splitKeywords(query) {
		if _, _, _, isFilter := parseFilterToken(kw); isFilter {
			continue
		}
		if hits := e.index.Search(kw, fulltext.Options{Prefix: true, Limit: 1}); len(hits) > 0 {
			continue
		}
		if sugg := e.index.Suggest(kw, max); len(sugg) > 0 {
			out[kw] = sugg
		}
	}
	return out
}

// SubspaceRows materializes the fact rows of the net's sub-dataspace
// DS', caching by interpretation signature. The returned slice is shared
// and must not be modified.
func (e *Engine) SubspaceRows(sn *StarNet) []int {
	rows, _ := e.subspaceRowsCtx(context.Background(), sn)
	return rows
}

// subspaceRowsCtx is SubspaceRows with the semijoin recorded as a
// subspace_semijoin span (cache hits are effectively free and show up
// as near-zero spans). A cancelled semijoin is never cached: partial
// row sets must not masquerade as the materialized subspace.
func (e *Engine) subspaceRowsCtx(ctx context.Context, sn *StarNet) ([]int, error) {
	sig := sn.Signature()
	n := e.exec.FactLen()
	if ent, ok := e.rowsCache.Get(sig); ok {
		if ent.upTo >= n {
			return ent.rows, nil
		}
		return e.extendRowsEntry(ctx, sig, ent, n, sn.Constraints(), sn.Filters)
	}
	_, sp := telemetry.StartSpan(ctx, "subspace_semijoin")
	defer sp.End()
	// Concurrent identical semijoins collapse into one scan; a cancelled
	// leader's partial result is never shared (cache.Group's contract).
	rows, _, err := e.rowsFlight.Do(ctx, sig, func(ctx context.Context) ([]int, error) {
		rows, err := e.materializeRows(ctx, sn.Constraints(), sn.Filters)
		if err != nil {
			return nil, err
		}
		e.rowsCache.Put(sig, rowsEntry{rows: rows, upTo: n})
		return rows, nil
	})
	return rows, err
}

// materializeRows produces a constrained-and-filtered fact-row set —
// through the cluster scatter-gatherer when one is configured, by local
// scan otherwise. Both paths return byte-identical rows; a scatter that
// lost nodes returns its partial rows inside a *DegradedError, which
// the caller's early return keeps out of the rows cache.
func (e *Engine) materializeRows(ctx context.Context, cs []olap.Constraint, filters []NumericFilter) ([]int, error) {
	if e.scatter != nil {
		_, sp := telemetry.StartSpan(ctx, "cluster_scatter")
		defer sp.End()
		// Workers apply the numeric filters per-row inside their range,
		// so the gathered set is already the filtered materialization.
		return e.scatter.ScatterRows(ctx, cs, filters)
	}
	// Numeric drills on fact (measure) columns become declarative bounds
	// for the semijoin's shard planner: a shard whose zone map misses the
	// bound interval is skipped before any bitset is intersected. The
	// filters still run below, so the row set is exactly the unbounded
	// semijoin's after filtering.
	var bounds []shard.Bound
	for _, nf := range filters {
		if nf.OnFact {
			lo, hi := nf.bounds()
			bounds = append(bounds, shard.Bound{Col: nf.Attr.Attr, Lo: lo, Hi: hi})
		}
	}
	rows, err := e.exec.FactRowsBoundedCtx(ctx, cs, bounds)
	if err != nil {
		return nil, err
	}
	if len(filters) > 0 {
		rows, err = e.applyFiltersCtx(ctx, rows, filters)
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// extendRowsEntry grows a cached fact-row set to the current fact
// length: the appended row range is checked against the same constraint
// bitsets and filters that built the entry, and the qualifying tail
// rows merge into a fresh slice (copy-on-grow; readers holding the old
// slice are unaffected). The scan that built the entry may have raced
// past its recorded coverage — results are ascending and membership is
// deterministic, so the merge deduplicates any overlap exactly.
func (e *Engine) extendRowsEntry(ctx context.Context, key string, ent rowsEntry, n int,
	cs []olap.Constraint, filters []NumericFilter) ([]int, error) {

	_, sp := telemetry.StartSpan(ctx, "subspace_extend")
	defer sp.End()
	tail, err := e.exec.FactRowsInRange(ctx, cs, ent.upTo, n)
	if err != nil {
		return nil, err
	}
	if len(tail) > 0 && len(filters) > 0 {
		tail, err = e.applyFiltersCtx(ctx, tail, filters)
		if err != nil {
			return nil, err
		}
	}
	merged := mergeAscUnique(ent.rows, tail)
	e.rowsCache.Put(key, rowsEntry{rows: merged, upTo: n})
	return merged, nil
}

// mergeAscUnique merges two ascending row lists, dropping duplicates.
// The result is always a fresh slice (never an alias of a), so cached
// row sets stay immutable for readers already holding them.
func mergeAscUnique(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// factRowsKeyed materializes an arbitrary constrained-and-filtered row
// set under a canonical key, serving repeats from the subspace cache and
// collapsing concurrent duplicates. Roll-up background spaces go through
// here: distinct interpretations frequently share them (every
// single-group net rolls up to the same spaces its siblings do), so
// keying them makes that sharing durable across requests, not just
// within one batch.
func (e *Engine) factRowsKeyed(ctx context.Context, key string, cs []olap.Constraint, filters []NumericFilter) ([]int, error) {
	n := e.exec.FactLen()
	if ent, ok := e.rowsCache.Get(key); ok {
		if ent.upTo >= n {
			return ent.rows, nil
		}
		return e.extendRowsEntry(ctx, key, ent, n, cs, filters)
	}
	rows, _, err := e.rowsFlight.Do(ctx, key, func(ctx context.Context) ([]int, error) {
		rows, err := e.materializeRows(ctx, cs, filters)
		if err != nil {
			return nil, err
		}
		e.rowsCache.Put(key, rowsEntry{rows: rows, upTo: n})
		return rows, nil
	})
	return rows, err
}

// RowsCacheStats snapshots the materialized-subspace cache counters.
func (e *Engine) RowsCacheStats() cache.Stats { return e.rowsCache.Stats() }

// InvalidateSubspaceRows drops every materialized subspace so the next
// SubspaceRows recomputes the semijoin. Benchmarks use it to time the
// cold drill path; SetShards does not need it because sharded and
// monolithic scans produce identical row sets.
func (e *Engine) InvalidateSubspaceRows() { e.rowsCache.Purge() }

// Index returns the engine's full-text index (telemetry wiring).
func (e *Engine) Index() *fulltext.Index { return e.index }

// SubspaceAggregate computes the engine's measure aggregate over DS'.
func (e *Engine) SubspaceAggregate(sn *StarNet) float64 {
	return e.exec.Aggregate(e.SubspaceRows(sn), e.measure, e.agg)
}
