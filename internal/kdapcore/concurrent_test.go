package kdapcore

import (
	"math"
	"sync"
	"testing"

	"kdap/internal/fulltext"
)

// Many goroutines exploring through one shared Engine/Executor must
// produce identical facets with no data races: this guards the
// executor's RWMutex-protected memos, the fact-aligned code-vector
// cache, and the clock caches. Run under go test -race.
func TestConcurrentExplore(t *testing.T) {
	e := ebizEngine()
	nets, err := e.Differentiate("Columbus LCD")
	if err != nil || len(nets) < 2 {
		t.Fatalf("differentiate: %v (%d nets)", err, len(nets))
	}
	opts := DefaultExploreOptions()
	opts.TopKAttrs = 2
	opts.AnnealIters = 50
	popts := opts
	popts.Parallel = true // fan out inside Explore too

	want, err := e.Explore(nets[0], opts)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Alternate interpretations and parallel modes so cold and
			// warm cache paths interleave.
			sn := nets[g%len(nets)]
			o := opts
			if g%2 == 1 {
				o = popts
			}
			f, err := e.Explore(sn, o)
			if err != nil {
				errs <- err
				return
			}
			if sn != nets[0] {
				return
			}
			// Same net must yield the same facets regardless of what
			// else is running.
			if f.SubspaceSize != want.SubspaceSize ||
				math.Abs(f.TotalAggregate-want.TotalAggregate) > 1e-9 ||
				len(f.Dimensions) != len(want.Dimensions) {
				t.Errorf("goroutine %d: facets diverged: size %d/%d agg %g/%g dims %d/%d",
					g, f.SubspaceSize, want.SubspaceSize, f.TotalAggregate, want.TotalAggregate,
					len(f.Dimensions), len(want.Dimensions))
				return
			}
			for di := range f.Dimensions {
				a, b := f.Dimensions[di], want.Dimensions[di]
				if a.Dimension != b.Dimension || len(a.Attributes) != len(b.Attributes) {
					t.Errorf("goroutine %d: dimension %d diverged", g, di)
					return
				}
				for ai := range a.Attributes {
					x, y := a.Attributes[ai], b.Attributes[ai]
					if x.Attr != y.Attr || x.Score != y.Score || len(x.Instances) != len(y.Instances) {
						t.Errorf("goroutine %d: facet %s diverged from %s", g, x.Attr, y.Attr)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// SetTextSimilarity is documented safe to call while queries are in
// flight: writers flip the relevance model while readers run the full
// differentiate pipeline. Run under go test -race — the old plain-field
// write was a data race against buildHitSets.
func TestConcurrentSetTextSimilarity(t *testing.T) {
	e := ebizEngine()
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		sims := []fulltext.Similarity{fulltext.BM25, fulltext.ClassicTFIDF}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e.SetTextSimilarity(sims[i%len(sims)])
		}
	}()
	var readers sync.WaitGroup
	for g := 0; g < 8; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 25; i++ {
				nets, err := e.Differentiate("Columbus LCD")
				if err != nil {
					t.Errorf("differentiate: %v", err)
					return
				}
				if len(nets) == 0 {
					t.Error("no nets")
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	<-writerDone
}

// Concurrent SubspaceRows on distinct nets churns the clock-evicting
// subspace cache; results must stay correct throughout.
func TestConcurrentSubspaceRows(t *testing.T) {
	e := ebizEngine()
	nets, err := e.Differentiate("Columbus LCD")
	if err != nil || len(nets) == 0 {
		t.Fatal("no nets")
	}
	want := make([][]int, len(nets))
	for i, sn := range nets {
		want[i] = e.SubspaceRows(sn)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				ni := (g + i) % len(nets)
				rows := e.SubspaceRows(nets[ni])
				if len(rows) != len(want[ni]) {
					t.Errorf("net %d: %d rows, want %d", ni, len(rows), len(want[ni]))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
