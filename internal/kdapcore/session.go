package kdapcore

import (
	"context"
	"fmt"
	"time"

	"kdap/internal/relation"
	"kdap/internal/schemagraph"
	"kdap/internal/telemetry"
	"kdap/internal/telemetry/profile"
)

// Session is the interactive state machine of the paper's Figure 1 loop:
// query → ranked interpretations → pick → facets → drill/back, with the
// interestingness mode switchable at any point. Front ends (the REPL, the
// HTTP server, a GUI) hold one Session per user and drive it through
// these methods; the Session owns the drill history and re-explores after
// every navigation step.
//
// A Session is not safe for concurrent use; each user gets their own.
type Session struct {
	engine *Engine
	opts   ExploreOptions

	nets   []*StarNet
	stack  []*StarNet // drill history; top = current subspace
	facets *Facets

	tracing     bool
	lastTrace   *telemetry.Trace
	lastProfile *profile.P
	timeout     time.Duration
}

// NewSession creates a session over an engine with the given explore
// options.
func NewSession(e *Engine, opts ExploreOptions) *Session {
	return &Session{engine: e, opts: opts}
}

// Engine returns the underlying engine.
func (s *Session) Engine() *Engine { return s.engine }

// Options returns the current explore options.
func (s *Session) Options() ExploreOptions { return s.opts }

// SetTracing toggles per-operation span recording. While enabled, every
// Query/Pick/Drill/Back records a span tree retrievable via LastTrace.
func (s *Session) SetTracing(on bool) { s.tracing = on }

// Tracing reports whether span recording is enabled.
func (s *Session) Tracing() bool { return s.tracing }

// LastTrace returns the span tree of the most recent traced operation,
// or nil when tracing is off or nothing has run yet.
func (s *Session) LastTrace() *telemetry.Trace { return s.lastTrace }

// LastProfile returns the wide event of the most recent operation, or
// nil before the first one. Profiling is always on for a session — the
// per-operation cost is a few dozen atomic adds, far below interactive
// noise — so the REPL's `profile` command works retroactively on
// whatever just ran.
func (s *Session) LastProfile() *profile.Event {
	if s.lastProfile == nil {
		return nil
	}
	return s.lastProfile.Snapshot()
}

// SetTimeout sets a per-operation deadline: every subsequent
// Query/Pick/Drill/Back runs under context.WithTimeout and returns
// context.DeadlineExceeded when the pipeline overruns it. Zero (the
// default) means no deadline.
func (s *Session) SetTimeout(d time.Duration) { s.timeout = d }

// Timeout returns the per-operation deadline (zero = none).
func (s *Session) Timeout() time.Duration { return s.timeout }

// traceCtx returns the context every session operation runs under —
// always carrying a fresh wide event (LastProfile), plus a trace when
// tracing is on, bounded by the session timeout when one is set. The
// returned finish func finalizes the root span and profile, publishes
// them to LastTrace/LastProfile, and releases the deadline timer.
func (s *Session) traceCtx(op string) (context.Context, func()) {
	ctx := context.Background()
	p := profile.New(op, "")
	s.lastProfile = p
	ctx = profile.NewContext(ctx, p)
	var tr *telemetry.Trace
	finish := func() { p.Finish(0, profile.DispositionOK, nil) }
	if s.tracing {
		tr = telemetry.NewTrace(op)
		s.lastTrace = tr
		ctx = tr.Context(ctx)
		finish = func() {
			tr.Finish()
			p.SetStages(tr.Stages())
			p.Finish(0, profile.DispositionOK, nil)
		}
	}
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		inner := finish
		finish = func() { cancel(); inner() }
	}
	return ctx, finish
}

// SetMode switches the interestingness measure; if an interpretation is
// active, its facets are rebuilt under the new mode.
func (s *Session) SetMode(mode InterestMode) error {
	s.opts.Mode = mode
	if s.Current() != nil {
		return s.refresh()
	}
	return nil
}

// Query runs the differentiate phase and resets the navigation state.
func (s *Session) Query(query string) ([]*StarNet, error) {
	ctx, finish := s.traceCtx("query")
	s.lastProfile.SetQuery(query)
	nets, err := s.engine.DifferentiateCtx(ctx, query)
	finish()
	if err != nil {
		return nil, err
	}
	s.nets = nets
	s.stack = nil
	s.facets = nil
	return nets, nil
}

// Interpretations returns the last query's ranked star nets.
func (s *Session) Interpretations() []*StarNet { return s.nets }

// Pick selects the n-th (1-based) interpretation and explores it.
func (s *Session) Pick(n int) (*Facets, error) {
	if n < 1 || n > len(s.nets) {
		return nil, fmt.Errorf("kdap: pick %d outside 1..%d", n, len(s.nets))
	}
	s.stack = []*StarNet{s.nets[n-1]}
	if err := s.refresh(); err != nil {
		s.stack = nil
		return nil, err
	}
	return s.facets, nil
}

// Current returns the star net at the top of the drill stack, or nil
// before Pick.
func (s *Session) Current() *StarNet {
	if len(s.stack) == 0 {
		return nil
	}
	return s.stack[len(s.stack)-1]
}

// Facets returns the current subspace's facets, or nil before Pick.
func (s *Session) Facets() *Facets { return s.facets }

// Depth returns the number of drill steps below the picked
// interpretation.
func (s *Session) Depth() int {
	if len(s.stack) == 0 {
		return 0
	}
	return len(s.stack) - 1
}

// Drill narrows the current subspace by a categorical facet instance and
// re-explores.
func (s *Session) Drill(attr schemagraph.AttrRef, role string, value relation.Value) (*Facets, error) {
	cur := s.Current()
	if cur == nil {
		return nil, fmt.Errorf("kdap: no interpretation picked")
	}
	next, err := s.engine.Drill(cur, attr, role, value)
	if err != nil {
		return nil, err
	}
	return s.push(next)
}

// DrillRange narrows the current subspace to a numeric facet range and
// re-explores.
func (s *Session) DrillRange(attr schemagraph.AttrRef, role string, lo, hi float64) (*Facets, error) {
	cur := s.Current()
	if cur == nil {
		return nil, fmt.Errorf("kdap: no interpretation picked")
	}
	next, err := s.engine.DrillRange(cur, attr, role, lo, hi)
	if err != nil {
		return nil, err
	}
	return s.push(next)
}

// Back undoes the last drill and re-explores the previous subspace.
func (s *Session) Back() (*Facets, error) {
	if len(s.stack) <= 1 {
		return nil, fmt.Errorf("kdap: nothing to undo")
	}
	s.stack = s.stack[:len(s.stack)-1]
	if err := s.refresh(); err != nil {
		return nil, err
	}
	return s.facets, nil
}

// push appends a drilled net, rolling back if its subspace is empty.
func (s *Session) push(next *StarNet) (*Facets, error) {
	s.stack = append(s.stack, next)
	if err := s.refresh(); err != nil {
		s.stack = s.stack[:len(s.stack)-1]
		_ = s.refresh() // restore the previous facets; it succeeded before
		return nil, err
	}
	return s.facets, nil
}

func (s *Session) refresh() error {
	ctx, finish := s.traceCtx("explore")
	f, err := s.engine.ExploreCtx(ctx, s.Current(), s.opts)
	finish()
	if err != nil {
		return err
	}
	s.facets = f
	return nil
}

// FlatAttrs flattens the current facets' attributes in display order, the
// addressing scheme interactive front ends use ("drill N M").
func (s *Session) FlatAttrs() []*AttrFacet {
	var out []*AttrFacet
	if s.facets == nil {
		return out
	}
	for _, d := range s.facets.Dimensions {
		out = append(out, d.Attributes...)
	}
	return out
}
