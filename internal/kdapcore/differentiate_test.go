package kdapcore

import (
	"strings"
	"testing"

	"kdap/internal/dataset"
	"kdap/internal/olap"
)

var ebiz = dataset.EBiz()

func ebizEngine() *Engine {
	fact := ebiz.DB.Table("TRANSITEM")
	m := olap.ProductMeasure(fact, "revenue", "UnitPrice", "Quantity")
	return NewEngine(ebiz.Graph, ebiz.Index, m, olap.Sum)
}

func TestDifferentiateColumbusLCD(t *testing.T) {
	e := ebizEngine()
	nets, err := e.Differentiate("Columbus LCD")
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) == 0 {
		t.Fatal("no star nets")
	}
	// The running example's ambiguity: interpretations must include the
	// city via Store, the city via Buyer/Seller, and the holiday, each
	// crossed with LCD product interpretations.
	var sawStoreCity, sawBuyerCity, sawHoliday bool
	for _, sn := range nets {
		sig := sn.DomainSignature()
		if strings.Contains(sig, "LOC.City[Store]") {
			sawStoreCity = true
		}
		if strings.Contains(sig, "LOC.City[Buyer]") {
			sawBuyerCity = true
		}
		if strings.Contains(sig, "HOLIDAY.Event[Time]") {
			sawHoliday = true
		}
	}
	if !sawStoreCity || !sawBuyerCity || !sawHoliday {
		for i, sn := range nets {
			if i > 15 {
				break
			}
			t.Logf("net %d: %s", i, sn)
		}
		t.Fatalf("interpretations missing: store=%v buyer=%v holiday=%v", sawStoreCity, sawBuyerCity, sawHoliday)
	}
	// Scores are sorted descending.
	for i := 1; i < len(nets); i++ {
		if nets[i].Score > nets[i-1].Score {
			t.Fatalf("nets not sorted at %d", i)
		}
	}
	// Every net has exactly 2 hit groups (one per keyword; no phrase
	// merge applies here).
	for _, sn := range nets {
		if len(sn.Groups) != 2 {
			t.Fatalf("net with %d groups: %s", len(sn.Groups), sn)
		}
	}
}

func TestDifferentiatePhraseSanJose(t *testing.T) {
	e := ebizEngine()
	nets, err := e.Differentiate("San Jose")
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) == 0 {
		t.Fatal("no star nets")
	}
	// The top net must be the merged phrase interpretation: a single hit
	// group on LOC.City containing only "San Jose".
	top := nets[0]
	if len(top.Groups) != 1 {
		t.Fatalf("top net should be the merged phrase: %s", top)
	}
	hg := top.Groups[0].Group
	if hg.Domain() != "LOC.City" || hg.Phrase != "San Jose" {
		t.Errorf("top group = %s phrase=%q", hg.Domain(), hg.Phrase)
	}
	if len(hg.Hits) != 1 || hg.Hits[0].Value.Text() != "San Jose" {
		t.Errorf("merged hits = %v", hg.Hits)
	}
	// Two-group interpretations (San Antonio + customer Jose) must still
	// exist but rank below.
	var sawTwoGroup bool
	for _, sn := range nets[1:] {
		if len(sn.Groups) == 2 {
			sawTwoGroup = true
			break
		}
	}
	if !sawTwoGroup {
		t.Error("non-phrase interpretations were lost")
	}
}

func TestDifferentiateSeattlePortlandAliases(t *testing.T) {
	e := ebizEngine()
	nets, err := e.Differentiate("Seattle Portland")
	if err != nil {
		t.Fatal(err)
	}
	// One interpretation: customers from Seattle buying in Portland
	// stores — same LOC table twice with different roles, needing
	// aliases.
	var found *StarNet
	for _, sn := range nets {
		if len(sn.Groups) != 2 {
			continue
		}
		roles := map[string]bool{}
		for _, bg := range sn.Groups {
			roles[bg.Path.Role] = true
		}
		if roles["Buyer"] && roles["Store"] {
			found = sn
			break
		}
	}
	if found == nil {
		t.Fatal("no Buyer+Store interpretation for 'Seattle Portland'")
	}
	aliases := map[string]bool{}
	for _, bg := range found.Groups {
		aliases[bg.Alias()] = true
	}
	if !aliases["LOC@Buyer"] || !aliases["LOC"] {
		t.Errorf("aliases = %v (Store role uses the bare name, Buyer is aliased)", aliases)
	}
}

func TestDifferentiateEmptyAndNoMatch(t *testing.T) {
	e := ebizEngine()
	if _, err := e.Differentiate("   "); err == nil {
		t.Error("blank query accepted")
	}
	nets, err := e.Differentiate("qqqq zzzz")
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != 0 {
		t.Errorf("no-match query produced %d nets", len(nets))
	}
}

func TestDifferentiateSingleKeywordSubspace(t *testing.T) {
	e := ebizEngine()
	nets, err := e.Differentiate("Projectors")
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) == 0 {
		t.Fatal("no nets")
	}
	rows := e.SubspaceRows(nets[0])
	if len(rows) == 0 {
		t.Fatal("empty subspace for top interpretation")
	}
	if agg := e.SubspaceAggregate(nets[0]); agg <= 0 {
		t.Errorf("aggregate = %g", agg)
	}
	if len(rows) >= e.Executor().FactLen() {
		t.Error("subspace did not slice anything")
	}
}

func TestStandardRankingPrefersPhrase(t *testing.T) {
	e := ebizEngine()
	nets, _ := e.DifferentiateRanked("San Jose", Standard)
	baseNets, _ := e.DifferentiateRanked("San Jose", Baseline)
	if len(nets) == 0 || len(baseNets) == 0 {
		t.Fatal("no nets")
	}
	if len(nets[0].Groups) != 1 {
		t.Error("standard method should put the phrase net on top")
	}
	_ = baseNets
}

func TestRankMethodStrings(t *testing.T) {
	want := map[RankMethod]string{
		Standard:        "standard",
		NoGroupNumNorm:  "no-group-number-norm",
		NoGroupSizeNorm: "no-group-size-norm",
		Baseline:        "baseline",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
	if RankMethod(99).String() != "unknown" {
		t.Error("unknown method name")
	}
	if len(RankMethods) != 4 {
		t.Error("RankMethods should list all four")
	}
}

func TestScoreStarNetFormulas(t *testing.T) {
	mk := func(groupSizes []int, score float64) *StarNet {
		sn := &StarNet{}
		for _, n := range groupSizes {
			hg := &HitGroup{Table: "T", Attr: "A"}
			for i := 0; i < n; i++ {
				hg.Hits = append(hg.Hits, Hit{Score: score, RawScore: score})
			}
			sn.Groups = append(sn.Groups, BoundGroup{Group: hg})
		}
		return sn
	}
	// One group, one hit, sim=1: standard = 1/(1·(1+ln1))/1² = 1.
	if got := scoreStarNet(mk([]int{1}, 1), Standard); got != 1 {
		t.Errorf("standard single = %g", got)
	}
	// Two groups of one hit each: standard = (1+1)/4 = 0.5.
	if got := scoreStarNet(mk([]int{1, 1}, 1), Standard); got != 0.5 {
		t.Errorf("standard two groups = %g", got)
	}
	// NoGroupNumNorm: same net scores 2.
	if got := scoreStarNet(mk([]int{1, 1}, 1), NoGroupNumNorm); got != 2 {
		t.Errorf("no-num-norm = %g", got)
	}
	// Group of e hits with sim=1: avg=1, size norm = 1/(1+1) = 0.5 — use
	// e≈2.718 hits is awkward; with 1 hit the norms coincide, so use 3
	// hits and check the ln penalty applies.
	s3 := scoreStarNet(mk([]int{3}, 1), Standard)
	ns3 := scoreStarNet(mk([]int{3}, 1), NoGroupSizeNorm)
	if !(s3 < ns3 && ns3 == 1) {
		t.Errorf("size norm: standard=%g nosize=%g", s3, ns3)
	}
	// Baseline: plain average of all hit scores.
	if got := scoreStarNet(mk([]int{3, 1}, 0.5), Baseline); got != 0.5 {
		t.Errorf("baseline = %g", got)
	}
	if got := scoreStarNet(&StarNet{}, Standard); got != 0 {
		t.Errorf("empty net = %g", got)
	}
}

func TestStarNetAccessors(t *testing.T) {
	e := ebizEngine()
	nets, _ := e.Differentiate("Columbus LCD")
	sn := nets[0]
	if sn.Query != "Columbus LCD" {
		t.Error("query not recorded")
	}
	dims := sn.Dimensions()
	if len(dims) == 0 {
		t.Error("no hitted dimensions")
	}
	if sn.Signature() == "" || sn.DomainSignature() == "" || sn.String() == "" {
		t.Error("renderings empty")
	}
	cs := sn.Constraints()
	if len(cs) != len(sn.Groups) {
		t.Error("constraint count")
	}
}

// §4.3's side-by-side slices: hit groups on the same attribute domain
// union rather than intersect — "Caps Gloves Jerseys" selects facts in
// any of the three subcategories.
func TestSameDomainGroupsUnion(t *testing.T) {
	e := ebizEngine()
	nets, err := e.Differentiate("Speakers Headsets")
	if err != nil {
		t.Fatal(err)
	}
	var sliceNet *StarNet
	for _, sn := range nets {
		if sn.DomainSignature() == "PGROUP.GroupName[Product] & PGROUP.GroupName[Product]" {
			sliceNet = sn
			break
		}
	}
	if sliceNet == nil {
		t.Fatal("no two-slice interpretation")
	}
	cs := sliceNet.Constraints()
	if len(cs) != 1 {
		t.Fatalf("same-domain groups should merge into one constraint, got %d", len(cs))
	}
	if len(cs[0].Values) != 2 {
		t.Fatalf("union values = %v", cs[0].Values)
	}
	rows := e.SubspaceRows(sliceNet)
	// The union equals the sum of the two individual slices (a fact
	// cannot be in both groups).
	single := func(group string) int {
		ns, _ := e.Differentiate(group)
		for _, n := range ns {
			if n.DomainSignature() == "PGROUP.GroupName[Product]" {
				return len(e.SubspaceRows(n))
			}
		}
		return -1
	}
	a, b := single("Speakers"), single("Headsets")
	if a <= 0 || b <= 0 || len(rows) != a+b {
		t.Errorf("union %d != %d + %d", len(rows), a, b)
	}
	// Exploring the sliced subspace works and promotes the shared domain.
	f, err := e.Explore(sliceNet, DefaultExploreOptions())
	if err != nil {
		t.Fatal(err)
	}
	if f.SubspaceSize != len(rows) {
		t.Error("explore size mismatch")
	}
}

// Cross-domain groups still intersect.
func TestCrossDomainGroupsIntersect(t *testing.T) {
	e := ebizEngine()
	nets, _ := e.Differentiate("Columbus Televisions")
	var sn *StarNet
	for _, n := range nets {
		if strings.Contains(n.DomainSignature(), "LOC.City[Store]") &&
			strings.Contains(n.DomainSignature(), "UNSPSC.ClassTitle") {
			sn = n
			break
		}
	}
	if sn == nil {
		t.Skip("no city × class interpretation")
	}
	if len(sn.Constraints()) != 2 {
		t.Fatalf("constraints = %d", len(sn.Constraints()))
	}
	rows := e.SubspaceRows(sn)
	cityOnly, _ := e.Differentiate("Columbus")
	for _, n := range cityOnly {
		if n.DomainSignature() == "LOC.City[Store]" {
			if len(rows) >= len(e.SubspaceRows(n)) {
				t.Error("intersection did not narrow")
			}
		}
	}
}
