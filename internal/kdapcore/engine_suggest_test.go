package kdapcore

import "testing"

func TestSuggestKeywords(t *testing.T) {
	e := ebizEngine()
	sugg := e.SuggestKeywords("Colombus LCD UnitPrice>10", 3)
	if len(sugg["Colombus"]) == 0 {
		t.Errorf("no suggestion for Colombus: %v", sugg)
	}
	if _, ok := sugg["LCD"]; ok {
		t.Error("matched keyword should not be suggested")
	}
	if _, ok := sugg["UnitPrice>10"]; ok {
		t.Error("filter token should be skipped")
	}
}
