#!/usr/bin/env bash
# Metrics/docs drift gate: the kdap_* family set exposed by a live
# kdapd must match the families documented in docs/OPERATIONS.md in
# BOTH directions. An exposed-but-undocumented family means the
# operator's guide quietly rotted; a documented-but-unexposed family
# means the docs promise telemetry the server no longer serves (or a
# subsystem stopped registering at startup). The daemon runs with every
# optional subsystem enabled — sharding, batching, admission control,
# the answer cache, disk-backed segmented storage, and scatter-gather
# coordination over two cluster workers — so conditionally-registered
# families (including kdap_cluster_*) are all on.
# Run from the repository root.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:18081}"
W1_ADDR="${W1_ADDR:-127.0.0.1:18082}"
W2_ADDR="${W2_ADDR:-127.0.0.1:18083}"
DOC="docs/OPERATIONS.md"
TMP="$(mktemp -d)"

go build -o "$TMP/kdapd" ./cmd/kdapd
# Two workers first, so the coordinator's startup verification finds a
# complete topology.
"$TMP/kdapd" -addr "$W1_ADDR" -db ebiz -worker -shard-range 0/2 \
  2>"$TMP/w1.log" &
W1_PID=$!
"$TMP/kdapd" -addr "$W2_ADDR" -db ebiz -worker -shard-range 1/2 \
  2>"$TMP/w2.log" &
W2_PID=$!
"$TMP/kdapd" -addr "$ADDR" -db ebiz -log json \
  -shards 8 -batch-window 2ms -max-inflight 8 -slo-target 250ms \
  -mmap-dir "$TMP/segments" -segment-size 1024 -segment-cache-mb 16 \
  -coordinator -workers "$W1_ADDR,$W2_ADDR" \
  2>"$TMP/kdapd.log" &
KDAPD_PID=$!
cleanup() {
  status=$?
  if [ "$status" -ne 0 ]; then
    for lg in kdapd w1 w2; do
      if [ -s "$TMP/$lg.log" ]; then
        echo "== $lg log (drift gate failed with status $status)" >&2
        cat "$TMP/$lg.log" >&2
      fi
    done
  fi
  kill "$KDAPD_PID" "$W1_PID" "$W2_PID" 2>/dev/null || true
  wait "$KDAPD_PID" "$W1_PID" "$W2_PID" 2>/dev/null || true
  rm -rf "$TMP"
  exit "$status"
}
trap cleanup EXIT

for _ in $(seq 1 50); do
  if ! kill -0 "$KDAPD_PID" 2>/dev/null; then
    echo "kdapd exited during startup" >&2
    exit 1
  fi
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "http://$ADDR/healthz" >/dev/null || {
  echo "kdapd never became healthy on $ADDR" >&2
  exit 1
}

# A little real traffic, so any family that only materializes on first
# use (rather than at wiring time) is present before the scrape.
SESSION="$(curl -sf "http://$ADDR/api/query" -d '{"db":"ebiz","q":"Columbus LCD"}' |
  grep -o '"session":"[^"]*"' | head -1 | cut -d'"' -f4)"
[ -n "$SESSION" ]
curl -sf "http://$ADDR/api/explore" -d "{\"session\":\"$SESSION\",\"pick\":1}" >/dev/null
curl -sf "http://$ADDR/api/suggest" -d '{"db":"ebiz","prefix":"col"}' >/dev/null || true
# One accepted ingest batch (a TRANSITEM row in fact-schema order) and
# one rejected batch: the kdap_ingest_* acceptance counters register at
# wiring time, but kdap_ingest_rejected_total only materializes on the
# first rejection, so both directions of that family need traffic too.
curl -sf "http://$ADDR/api/ingest" \
  -d '{"db":"ebiz","rows":[[4001, 1, 1, 1, 9.99]]}' >/dev/null
REJECT_STATUS="$(curl -s -o /dev/null -w '%{http_code}' \
  "http://$ADDR/api/ingest" -d '{"db":"ebiz","rows":[]}')"
[ "$REJECT_STATUS" = 400 ] || {
  echo "empty ingest batch returned $REJECT_STATUS, want 400" >&2
  exit 1
}

# Exposed families: metric names at line start, histogram series
# collapsed onto their family name.
curl -sf "http://$ADDR/metrics" |
  grep -o '^kdap_[a-z_]*' |
  sed -E 's/_(bucket|sum|count)$//' |
  sort -u >"$TMP/exposed"

# Documented families: every kdap_* token in the operator's guide
# (tables, prose, and PromQL alike — a mention is a promise).
grep -oE 'kdap_[a-z_]+' "$DOC" |
  sed -E 's/_(bucket|sum|count)$//' |
  sort -u >"$TMP/documented"

FAIL=0
if ! comm -23 "$TMP/exposed" "$TMP/documented" >"$TMP/undocumented" || [ -s "$TMP/undocumented" ]; then
  echo "== exposed at /metrics but missing from $DOC:" >&2
  sed 's/^/  /' "$TMP/undocumented" >&2
  FAIL=1
fi
if ! comm -13 "$TMP/exposed" "$TMP/documented" >"$TMP/unexposed" || [ -s "$TMP/unexposed" ]; then
  echo "== documented in $DOC but not exposed by a fully-enabled kdapd:" >&2
  sed 's/^/  /' "$TMP/unexposed" >&2
  FAIL=1
fi
[ "$FAIL" = 0 ]

echo "metrics drift OK ($(wc -l <"$TMP/exposed") families, both directions)"
