#!/usr/bin/env bash
# Cluster smoke test: a 2-worker scatter-gather topology must answer
# byte-for-byte identically to a monolithic kdapd, and killing a worker
# mid-session must degrade to an attributed partial answer — never a
# hang, never a silently-wrong merge. Fallback and hedging are disabled
# so every row set really crosses the wire (parity can't be faked by a
# coordinator-local re-scan) and node loss really surfaces. Caches are
# off so every explore re-materializes through the scatter path.
# Run from the repository root. See docs/CLUSTER.md.
set -euo pipefail

MONO_ADDR="${MONO_ADDR:-127.0.0.1:18090}"
W1_ADDR="${W1_ADDR:-127.0.0.1:18091}"
W2_ADDR="${W2_ADDR:-127.0.0.1:18092}"
COORD_ADDR="${COORD_ADDR:-127.0.0.1:18093}"
TMP="$(mktemp -d)"

# Ten workload queries for the parity sweep (internal/workload IDs);
# "Bolts" is deliberately NOT here — the node-loss probe below needs a
# subspace the coordinator hasn't materialized and cached yet.
QUERIES=("Overstock" "Tire" "Sport-100" "October" "Europe"
  "Australia" "Bachelors" "Mountain Tire" "California US" "Road Bikes")

go build -o "$TMP/kdapd" ./cmd/kdapd

"$TMP/kdapd" -addr "$MONO_ADDR" -db online -log json -answer-cache-size 0 \
  2>"$TMP/mono.log" &
MONO_PID=$!
"$TMP/kdapd" -addr "$W1_ADDR" -db online -worker -shard-range 0/2 \
  2>"$TMP/w1.log" &
W1_PID=$!
"$TMP/kdapd" -addr "$W2_ADDR" -db online -worker -shard-range 1/2 \
  2>"$TMP/w2.log" &
W2_PID=$!
"$TMP/kdapd" -addr "$COORD_ADDR" -db online -log json -answer-cache-size 0 \
  -coordinator -workers "$W1_ADDR,$W2_ADDR" \
  -cluster-fallback=false -hedge-after 0 -node-timeout 2s \
  2>"$TMP/coord.log" &
COORD_PID=$!

cleanup() {
  status=$?
  if [ "$status" -ne 0 ]; then
    for role in mono w1 w2 coord; do
      if [ -s "$TMP/$role.log" ]; then
        echo "== $role log (cluster smoke failed with status $status)" >&2
        cat "$TMP/$role.log" >&2
      fi
    done
  fi
  kill "$MONO_PID" "$W1_PID" "$W2_PID" "$COORD_PID" 2>/dev/null || true
  wait "$MONO_PID" "$W1_PID" "$W2_PID" "$COORD_PID" 2>/dev/null || true
  rm -rf "$TMP"
  exit "$status"
}
trap cleanup EXIT

# The coordinator verifies worker topology before serving, so its
# /healthz going green means the whole cluster is up.
for pid_addr in "$MONO_PID $MONO_ADDR" "$COORD_PID $COORD_ADDR"; do
  set -- $pid_addr
  PID=$1 ADDR=$2
  for _ in $(seq 1 75); do
    if ! kill -0 "$PID" 2>/dev/null; then
      echo "kdapd on $ADDR exited during startup" >&2
      exit 1
    fi
    curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
    sleep 0.2
  done
  curl -sf "http://$ADDR/healthz" >/dev/null || {
    echo "kdapd never became healthy on $ADDR" >&2
    exit 1
  }
done

echo "== ${#QUERIES[@]} workload queries answer byte-for-byte like the monolith"
for Q in "${QUERIES[@]}"; do
  BODY="{\"db\":\"online\",\"q\":\"$Q\"}"
  # Query responses embed a per-daemon session ID; strip it, everything
  # else (interpretations, scores, signatures) must match exactly.
  curl -sf --max-time 15 "http://$MONO_ADDR/api/query" -d "$BODY" |
    sed 's/"session":"[^"]*"//' >"$TMP/q_mono.json"
  curl -sf --max-time 15 "http://$COORD_ADDR/api/query" -d "$BODY" |
    sed 's/"session":"[^"]*"//' >"$TMP/q_coord.json"
  cmp "$TMP/q_mono.json" "$TMP/q_coord.json" || {
    echo "query $Q: differentiate diverged" >&2
    exit 1
  }

  MSESSION="$(curl -sf --max-time 15 "http://$MONO_ADDR/api/query" -d "$BODY" |
    grep -o '"session":"[^"]*"' | head -1 | cut -d'"' -f4)"
  CSESSION="$(curl -sf --max-time 15 "http://$COORD_ADDR/api/query" -d "$BODY" |
    grep -o '"session":"[^"]*"' | head -1 | cut -d'"' -f4)"
  [ -n "$MSESSION" ] && [ -n "$CSESSION" ]
  # Explore responses carry no session; the whole body must be
  # byte-identical — this is the distributed-correctness contract.
  curl -sf --max-time 15 "http://$MONO_ADDR/api/explore" \
    -d "{\"session\":\"$MSESSION\",\"pick\":1}" >"$TMP/e_mono.json"
  curl -sf --max-time 15 "http://$COORD_ADDR/api/explore" \
    -d "{\"session\":\"$CSESSION\",\"pick\":1}" >"$TMP/e_coord.json"
  cmp "$TMP/e_mono.json" "$TMP/e_coord.json" || {
    echo "query $Q: explore body diverged" >&2
    diff <(head -c 400 "$TMP/e_mono.json") <(head -c 400 "$TMP/e_coord.json") >&2 || true
    exit 1
  }
  echo "   ok: $Q"
done

echo "== the explores actually scattered (kdap_cluster_fanout_total > 0)"
FANOUT="$(curl -sf "http://$COORD_ADDR/metrics" |
  grep '^kdap_cluster_fanout_total' | grep -o '[0-9]*$')"
[ -n "$FANOUT" ] && [ "$FANOUT" -gt 0 ] || {
  echo "coordinator never fanned out (kdap_cluster_fanout_total=$FANOUT)" >&2
  exit 1
}

echo "== killing worker 2 degrades to an attributed partial answer"
kill -9 "$W2_PID"
wait "$W2_PID" 2>/dev/null || true
SESSION="$(curl -sf --max-time 15 "http://$COORD_ADDR/api/query" \
  -d '{"db":"online","q":"Bolts"}' |
  grep -o '"session":"[^"]*"' | head -1 | cut -d'"' -f4)"
[ -n "$SESSION" ]
# --max-time is the no-hang assertion: the degraded answer must land
# within the per-node deadline budget, not block on the dead socket.
curl -sf --max-time 15 "http://$COORD_ADDR/api/explore" \
  -d "{\"session\":\"$SESSION\",\"pick\":1,\"partial\":true}" >"$TMP/degraded.json"
grep -q '"partial":true' "$TMP/degraded.json" || {
  echo "node loss did not mark the answer partial" >&2
  head -c 400 "$TMP/degraded.json" >&2
  exit 1
}
grep -q "\"degradedNodes\":\[\"$W2_ADDR\"\]" "$TMP/degraded.json" || {
  echo "partial answer did not attribute the dead worker $W2_ADDR" >&2
  head -c 400 "$TMP/degraded.json" >&2
  exit 1
}

echo "cluster smoke OK (${#QUERIES[@]} queries byte-identical, node loss attributed)"
