#!/usr/bin/env bash
# Answer-cache smoke test against a live kdapd: the second identical
# query must be served from the cache (X-KDAP-Cache: hit) with a
# byte-for-byte identical explore body, and If-None-Match must
# revalidate to 304. (Metric/doc agreement is scripts/metrics_drift.sh,
# which checks both directions.) Run from the repository root.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:18080}"
QUERY_BODY='{"db":"ebiz","q":"Columbus LCD"}'
TMP="$(mktemp -d)"

go build -o "$TMP/kdapd" ./cmd/kdapd
"$TMP/kdapd" -addr "$ADDR" -db ebiz -log json 2>"$TMP/kdapd.log" &
KDAPD_PID=$!
cleanup() {
  status=$?
  # On any failure, surface the daemon's log — without it a CI failure
  # here is just "curl: (22)" with nothing to debug.
  if [ "$status" -ne 0 ] && [ -s "$TMP/kdapd.log" ]; then
    echo "== kdapd log (smoke test failed with status $status)" >&2
    cat "$TMP/kdapd.log" >&2
  fi
  kill "$KDAPD_PID" 2>/dev/null || true
  wait "$KDAPD_PID" 2>/dev/null || true
  rm -rf "$TMP"
  exit "$status"
}
trap cleanup EXIT

for _ in $(seq 1 50); do
  # Fail fast if the daemon died (bad flag, port in use, panic on
  # load) instead of burning the whole poll budget against a corpse.
  if ! kill -0 "$KDAPD_PID" 2>/dev/null; then
    echo "kdapd exited during startup" >&2
    exit 1
  fi
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "http://$ADDR/healthz" >/dev/null || {
  echo "kdapd never became healthy on $ADDR" >&2
  exit 1
}

echo "== cold query is a cache miss with a weak ETag"
curl -sf -D "$TMP/h1" -o /dev/null "http://$ADDR/api/query" -d "$QUERY_BODY"
tr -d '\r' <"$TMP/h1" | grep -qi '^x-kdap-cache: miss$'
ETAG="$(tr -d '\r' <"$TMP/h1" | sed -n 's/^[Ee][Tt][Aa][Gg]: //p')"
case "$ETAG" in 'W/"'*) ;; *) echo "not a weak ETag: $ETAG" >&2; exit 1;; esac

echo "== repeated query is a cache hit with the same ETag"
curl -sf -D "$TMP/h2" -o /dev/null "http://$ADDR/api/query" -d "$QUERY_BODY"
tr -d '\r' <"$TMP/h2" | grep -qi '^x-kdap-cache: hit$'
ETAG2="$(tr -d '\r' <"$TMP/h2" | sed -n 's/^[Ee][Tt][Aa][Gg]: //p')"
[ "$ETAG" = "$ETAG2" ] || { echo "ETag changed: $ETAG vs $ETAG2" >&2; exit 1; }

echo "== If-None-Match revalidates to 304 without a body"
CODE="$(curl -s -o "$TMP/body304" -w '%{http_code}' -H "If-None-Match: $ETAG" \
  "http://$ADDR/api/query" -d "$QUERY_BODY")"
[ "$CODE" = 304 ] || { echo "revalidation returned $CODE, want 304" >&2; exit 1; }
[ ! -s "$TMP/body304" ] || { echo "304 carried a body" >&2; exit 1; }

echo "== cached explore is byte-for-byte the cold response"
SESSION="$(curl -sf "http://$ADDR/api/query" -d "$QUERY_BODY" |
  grep -o '"session":"[^"]*"' | head -1 | cut -d'"' -f4)"
[ -n "$SESSION" ]
EXPLORE_BODY="{\"session\":\"$SESSION\",\"pick\":1}"
curl -sf -D "$TMP/e1" -o "$TMP/cold.json" "http://$ADDR/api/explore" -d "$EXPLORE_BODY"
curl -sf -D "$TMP/e2" -o "$TMP/warm.json" "http://$ADDR/api/explore" -d "$EXPLORE_BODY"
tr -d '\r' <"$TMP/e2" | grep -qi '^x-kdap-cache: hit$'
cmp "$TMP/cold.json" "$TMP/warm.json"

echo "cache smoke OK"
