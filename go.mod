module kdap

go 1.22
