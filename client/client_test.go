package client

import (
	"context"
	"net/http/httptest"
	"testing"

	"kdap/internal/dataset"
	"kdap/internal/server"
)

func newPair(t *testing.T) (*Client, *httptest.Server) {
	t.Helper()
	srv := server.New(map[string]*dataset.Warehouse{"ebiz": dataset.EBiz()})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return New(ts.URL, nil), ts
}

func TestClientFullLoop(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()

	whs, err := c.Warehouses(ctx)
	if err != nil || len(whs) != 1 || whs[0] != "ebiz" {
		t.Fatalf("warehouses: %v %v", whs, err)
	}

	q, err := c.Query(ctx, "ebiz", "Columbus LCD")
	if err != nil || q.Session == "" || len(q.Interpretations) == 0 {
		t.Fatalf("query: %v", err)
	}
	if q.Interpretations[0].Rank != 1 {
		t.Error("rank numbering")
	}

	f, err := c.Explore(ctx, q.Session, 1, ExploreOptions{TopKAttrs: 2, TopKInstances: 3})
	if err != nil || f.SubspaceSize == 0 {
		t.Fatalf("explore: %v", err)
	}

	var cat *AttrFacet
	var num *AttrFacet
	for i := range f.Dimensions {
		for j := range f.Dimensions[i].Attributes {
			a := &f.Dimensions[i].Attributes[j]
			if a.Numeric && num == nil && len(a.Instances) > 1 {
				num = a
			}
			if !a.Numeric && cat == nil && len(a.Instances) > 0 {
				cat = a
			}
		}
	}
	if cat == nil {
		t.Fatal("no categorical facet")
	}
	sess2, err := c.Drill(ctx, q.Session, 1, *cat, cat.Instances[0].Label)
	if err != nil || sess2 == "" {
		t.Fatalf("drill: %v", err)
	}
	f2, err := c.Explore(ctx, sess2, 1, ExploreOptions{})
	if err != nil || f2.SubspaceSize == 0 || f2.SubspaceSize > f.SubspaceSize {
		t.Fatalf("explore after drill: %v (%d -> %d)", err, f.SubspaceSize, f2.SubspaceSize)
	}
	if num != nil {
		sess3, err := c.DrillRange(ctx, q.Session, 1, *num, num.Instances[0].Lo, num.Instances[0].Hi)
		if err != nil || sess3 == "" {
			t.Fatalf("drill range: %v", err)
		}
	}
}

func TestClientBellwetherAndSuggest(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()
	q, err := c.Query(ctx, "ebiz", "Projectors")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Explore(ctx, q.Session, 1, ExploreOptions{Mode: "bellwether"}); err != nil {
		t.Fatalf("bellwether: %v", err)
	}
	sugg, err := c.Suggest(ctx, "ebiz", "Colombus")
	if err != nil || len(sugg["Colombus"]) == 0 {
		t.Fatalf("suggest: %v %v", sugg, err)
	}
}

func TestClientErrors(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()
	_, err := c.Query(ctx, "ghost", "x")
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.StatusCode != 404 || apiErr.Error() == "" {
		t.Fatalf("expected 404 APIError, got %v", err)
	}
	if _, err := c.Explore(ctx, "nope", 1, ExploreOptions{}); err == nil {
		t.Error("ghost session accepted")
	}
	if _, err := c.Query(ctx, "ebiz", "  "); err == nil {
		t.Error("blank query accepted")
	}
	// Unreachable server.
	dead := New("http://127.0.0.1:1", nil)
	if _, err := dead.Warehouses(ctx); err == nil {
		t.Error("dead server reachable?")
	}
}
