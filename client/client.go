// Package client is a Go client for the kdapd HTTP API: the
// differentiate → pick → explore → drill loop against a remote KDAP
// server, with the same DTOs the server returns.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client talks to one kdapd server.
type Client struct {
	baseURL string
	http    *http.Client
}

// New creates a client for the server at baseURL (e.g.
// "http://localhost:8080"). httpClient may be nil for
// http.DefaultClient.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{baseURL: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// --- response types (mirroring internal/server's DTOs) ---

// Interpretation is one ranked star net.
type Interpretation struct {
	Rank      int        `json:"rank"`
	Score     float64    `json:"score"`
	Signature string     `json:"signature"`
	Groups    []HitGroup `json:"groups"`
}

// HitGroup is one hit group of an interpretation.
type HitGroup struct {
	Table  string   `json:"table"`
	Attr   string   `json:"attr"`
	Role   string   `json:"role"`
	Alias  string   `json:"alias"`
	Phrase string   `json:"phrase,omitempty"`
	Values []string `json:"values"`
}

// QueryResult is the answer to Query: a server-side session handle plus
// the ranked interpretations.
type QueryResult struct {
	Session         string           `json:"session"`
	Query           string           `json:"query"`
	Interpretations []Interpretation `json:"interpretations"`
}

// Facets is the explore result.
type Facets struct {
	SubspaceSize   int               `json:"subspaceSize"`
	TotalAggregate float64           `json:"totalAggregate"`
	Dimensions     []DimensionFacets `json:"dimensions"`
}

// DimensionFacets is one dimension's facets.
type DimensionFacets struct {
	Dimension  string      `json:"dimension"`
	Hitted     bool        `json:"hitted"`
	Attributes []AttrFacet `json:"attributes"`
}

// AttrFacet is one facet attribute.
type AttrFacet struct {
	Table     string     `json:"table"`
	Attr      string     `json:"attr"`
	Role      string     `json:"role"`
	Score     float64    `json:"score"`
	Promoted  bool       `json:"promoted"`
	Numeric   bool       `json:"numeric"`
	Instances []Instance `json:"instances"`
}

// Instance is one facet entry.
type Instance struct {
	Label     string  `json:"label"`
	Lo        float64 `json:"lo,omitempty"`
	Hi        float64 `json:"hi,omitempty"`
	Aggregate float64 `json:"aggregate"`
	Score     float64 `json:"score"`
}

// ExploreOptions tune an Explore call; zero values use server defaults.
type ExploreOptions struct {
	Mode          string // "surprise" (default) or "bellwether"
	TopKAttrs     int
	TopKInstances int
}

// APIError is a non-2xx response from the server.
type APIError struct {
	StatusCode int
	Message    string
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("kdap server: %d: %s", e.StatusCode, e.Message)
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(data, &e)
		if e.Error == "" {
			e.Error = strings.TrimSpace(string(data))
		}
		return &APIError{StatusCode: resp.StatusCode, Message: e.Error}
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// Warehouses lists the warehouses the server exposes.
func (c *Client) Warehouses(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/api/warehouses", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out struct {
		Warehouses []string `json:"warehouses"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Warehouses, nil
}

// Query runs the differentiate phase against a warehouse.
func (c *Client) Query(ctx context.Context, db, q string) (*QueryResult, error) {
	var out QueryResult
	if err := c.post(ctx, "/api/query", map[string]any{"db": db, "q": q}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Explore builds the facets of the picked (1-based) interpretation.
func (c *Client) Explore(ctx context.Context, session string, pick int, opts ExploreOptions) (*Facets, error) {
	var out Facets
	body := map[string]any{"session": session, "pick": pick}
	if opts.Mode != "" {
		body["mode"] = opts.Mode
	}
	if opts.TopKAttrs > 0 {
		body["topKAttrs"] = opts.TopKAttrs
	}
	if opts.TopKInstances > 0 {
		body["topKInstances"] = opts.TopKInstances
	}
	if err := c.post(ctx, "/api/explore", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Drill narrows the picked interpretation by a categorical facet
// instance, returning the new session handle (pick 1 against it).
func (c *Client) Drill(ctx context.Context, session string, pick int, a AttrFacet, value string) (string, error) {
	var out struct {
		Session string `json:"session"`
	}
	err := c.post(ctx, "/api/drill", map[string]any{
		"session": session, "pick": pick,
		"table": a.Table, "attr": a.Attr, "role": a.Role, "value": value,
	}, &out)
	return out.Session, err
}

// DrillRange narrows by a numeric facet range.
func (c *Client) DrillRange(ctx context.Context, session string, pick int, a AttrFacet, lo, hi float64) (string, error) {
	var out struct {
		Session string `json:"session"`
	}
	err := c.post(ctx, "/api/drill", map[string]any{
		"session": session, "pick": pick,
		"table": a.Table, "attr": a.Attr, "role": a.Role,
		"numeric": true, "lo": lo, "hi": hi,
	}, &out)
	return out.Session, err
}

// Suggest returns "did you mean" corrections for unmatched keywords.
func (c *Client) Suggest(ctx context.Context, db, q string) (map[string][]string, error) {
	var out struct {
		Suggestions map[string][]string `json:"suggestions"`
	}
	if err := c.post(ctx, "/api/suggest", map[string]any{"db": db, "q": q}, &out); err != nil {
		return nil, err
	}
	return out.Suggestions, nil
}
