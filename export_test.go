package kdap

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteFacetsCSV(t *testing.T) {
	// "projector" selects a subspace whose facets carry both a promoted
	// hit attribute and bucketed numeric attributes, so every CSV row
	// shape below is exercised.
	e := NewEngine(EBiz())
	nets, _ := e.Differentiate("projector")
	f, err := e.Explore(nets[0], DefaultExploreOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteFacetsCSV(&sb, f); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(records) < 2 {
		t.Fatalf("only %d records", len(records))
	}
	if len(records[0]) != 11 || records[0][0] != "dimension" {
		t.Errorf("header = %v", records[0])
	}
	// Every data row has the full width and a parsable aggregate.
	for i, rec := range records[1:] {
		if len(rec) != 11 {
			t.Fatalf("row %d has %d fields", i+1, len(rec))
		}
		if rec[9] == "" {
			t.Errorf("row %d missing aggregate", i+1)
		}
	}
	// Promoted rows leave attr_score empty; numeric rows carry lo/hi.
	var sawPromoted, sawNumeric bool
	for _, rec := range records[1:] {
		if rec[3] == "true" && rec[5] == "" {
			sawPromoted = true
		}
		if rec[4] == "true" && rec[7] != "" && rec[8] != "" {
			sawNumeric = true
		}
	}
	if !sawPromoted || !sawNumeric {
		t.Errorf("promoted=%v numeric=%v rows missing", sawPromoted, sawNumeric)
	}
}

func TestSchemaDOT(t *testing.T) {
	dot := SchemaDOT(EBiz())
	for _, want := range []string{
		"digraph schema",
		`"TRANSITEM" [shape=doubleoctagon]`,
		`label="Product"`,
		`"TRANS" -> "STORE" [label="StoreKey"]`,
		`"TRANS" -> "ACCOUNT" [label="BuyerKey"]`,
		`"TRANS" -> "ACCOUNT" [label="SellerKey"]`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// A shared table (LOC) renders exactly once as a node declaration.
	if n := strings.Count(dot, `    "LOC";`); n != 1 {
		t.Errorf("LOC declared %d times", n)
	}
	// Balanced braces — parseable by dot.
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Error("unbalanced braces")
	}
}
